"""Hand-computed oracle + property tests for the coalescing window.

The window semantics are pinned by two oracles: a window of W=1 equals
per-batch coalescing exactly (each flush is ``coalesce_requests`` applied
to that one batch), and W>1 never emits more post-merge requests than the
sum of the per-batch counts.  For capacities that divide each other the
total post-merge count is monotone non-increasing in W — every 2W-window
is the union of two aligned W-windows — and hypothesis checks that on
arbitrary streams.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import CoalescingWindow, coalesce_requests, windowed_request_stream
from repro.engine.window import WindowedBatch
from repro.exma.search import OccRequest
from repro.hw.cam import CamConfig
from repro.hw.scheduler import FrFcfsScheduler, TwoStageScheduler, schedule_windowed


def R(kmer: int, pos: int) -> OccRequest:
    return OccRequest(packed_kmer=kmer, pos=pos)


class TestWindowOracle:
    """Tiny request streams worked out by hand."""

    def test_w1_equals_per_batch_coalescing_exactly(self):
        # Batch carries a duplicated pair and an unsorted order; W=1 must
        # produce exactly what coalesce_requests produces for the batch.
        batch = [R(7, 4), R(3, 0), R(7, 4), R(3, 9)]
        window = CoalescingWindow(1)
        flushed = window.push(batch)
        assert flushed is not None
        step = coalesce_requests(
            np.array([r.packed_kmer for r in batch]),
            np.array([r.pos for r in batch]),
            span=10,
        )
        oracle = [
            R(int(k), int(p)) for k, p in zip(step.kmers.tolist(), step.positions.tolist())
        ]
        assert list(flushed.requests) == oracle == [R(3, 0), R(3, 9), R(7, 4)]
        assert flushed.issued == 4
        assert flushed.unique == 3
        assert flushed.merged == 1
        assert flushed.batches == 1

    def test_w2_merges_cross_batch_duplicates_once(self):
        # (3,0) appears in both batches: the window resolves it once.
        first = [R(3, 0), R(7, 4)]
        second = [R(3, 0), R(1, 2)]
        window = CoalescingWindow(2)
        assert window.push(first) is None
        assert window.pending == 1
        flushed = window.push(second)
        assert flushed is not None
        assert list(flushed.requests) == [R(1, 2), R(3, 0), R(7, 4)]
        assert flushed.issued == 4
        assert flushed.unique == 3
        assert flushed.batches == 2
        assert window.pending == 0

    def test_w2_never_exceeds_sum_of_per_batch_counts(self):
        # Disjoint batches: merging buys nothing, but costs nothing either.
        first = [R(1, 1)]
        second = [R(2, 2)]
        _, flushes = windowed_request_stream([first, second], capacity=2)
        assert sum(f.unique for f in flushes) == 2 == len(first) + len(second)

    def test_flush_emits_trailing_partial_window(self):
        window = CoalescingWindow(4)
        assert window.push([R(1, 1)]) is None
        assert window.push([R(1, 1), R(2, 2)]) is None
        flushed = window.flush()
        assert flushed is not None
        assert flushed.batches == 2
        assert flushed.issued == 3
        assert list(flushed.requests) == [R(1, 1), R(2, 2)]
        assert window.flush() is None

    def test_stream_yields_full_then_partial_windows(self):
        batches = [[R(1, 1)], [R(2, 2)], [R(3, 3)]]
        flushes = list(CoalescingWindow(2).stream(batches))
        assert [f.batches for f in flushes] == [2, 1]
        assert [f.unique for f in flushes] == [2, 1]

    def test_pushed_stream_is_snapshotted_not_aliased(self):
        """A buffered columnar stream must not grow with its producer:
        pushing ``stats.requests`` and then searching another batch into
        the same stats object may not leak the later requests into the
        flushed window."""
        from repro.engine import RequestStream

        stream = RequestStream()
        stream.append_step(np.array([1 * 10 + 0, 2 * 10 + 5]), 10)
        window = CoalescingWindow(capacity=4)
        window.push(stream)
        stream.append_step(np.array([7 * 10 + 7]), 10)  # producer keeps going
        flushed = window.flush()
        assert flushed.issued == 2
        assert flushed.requests == (R(1, 0), R(2, 5))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            CoalescingWindow(0)

    def test_windowed_batch_counters(self):
        flushed = WindowedBatch.from_requests((R(1, 1),), batches=2, issued=5)
        assert flushed.unique == 1
        assert flushed.merged == 4


class TestColumnarFlush:
    """The flush path never materialises request objects."""

    def test_flush_stays_columnar_until_requests_accessed(self):
        from repro.engine import RequestStream

        stream = RequestStream()
        stream.append_step(np.array([1 * 10 + 0, 2 * 10 + 5]), 10)
        flushed = CoalescingWindow(1).push(stream)
        assert flushed is not None
        assert not flushed.materialised
        assert flushed.keys.dtype == np.int64
        assert np.array_equal(flushed.kmers, [1, 2])
        assert np.array_equal(flushed.positions, [0, 5])
        assert not flushed.materialised  # column access keeps it columnar
        assert flushed.requests == (R(1, 0), R(2, 5))
        assert flushed.materialised

    def test_flush_keys_are_unique_and_sorted(self):
        batches = [[R(3, 1), R(3, 1), R(1, 9)], [R(3, 1), R(2, 0)]]
        flushed = CoalescingWindow(2)
        flushed.push(batches[0])
        merged = flushed.push(batches[1])
        assert merged is not None
        assert np.array_equal(merged.keys, np.unique(merged.keys))
        assert merged.unique == 3
        assert merged.issued == 5

    def test_mixed_span_chunks_rebase_onto_widest_span(self):
        from repro.engine import RequestStream

        narrow = RequestStream()
        narrow.append_step(np.array([2 * 4 + 3]), 4)  # (2, 3) with span 4
        wide = RequestStream()
        wide.append_step(np.array([2 * 100 + 3, 5 * 100 + 7]), 100)
        window = CoalescingWindow(2)
        window.push(narrow)
        merged = window.push(wide)
        assert merged is not None
        # (2, 3) appears in both spans: one survivor after the re-base.
        assert merged.unique == 2
        assert merged.requests == (R(2, 3), R(5, 7))

    def test_windowed_batch_is_a_sequence(self):
        flushed = CoalescingWindow(1).push([R(4, 2), R(1, 1)])
        assert flushed is not None
        assert len(flushed) == 2
        assert flushed[0] == R(1, 1)
        assert list(flushed) == [R(1, 1), R(4, 2)]


class TestScheduleWindowed:
    """The hw schedulers consume windowed streams."""

    BATCHES = [[R(3, 0), R(7, 4), R(3, 0)], [R(3, 0), R(1, 2)], [R(5, 5)]]

    def test_frfcfs_consumes_post_merge_stream(self):
        scheduled = list(
            schedule_windowed(FrFcfsScheduler(CamConfig(entries=4)), self.BATCHES, window=3)
        )
        requests = [r for batch in scheduled for r in batch.stage1]
        # One window of 3 batches: unique pairs, (kmer, pos)-sorted.
        assert requests == [R(1, 2), R(3, 0), R(5, 5), R(7, 4)]

    def test_two_stage_scheduler_sees_fewer_requests_with_wider_window(self):
        def scheduled_requests(window: int) -> int:
            scheduler = TwoStageScheduler(CamConfig(entries=4))
            return sum(
                len(batch) for batch in schedule_windowed(scheduler, self.BATCHES, window)
            )

        assert scheduled_requests(1) == 5  # per-batch dedupe only
        assert scheduled_requests(3) == 4  # cross-batch (3,0) merged
        assert scheduled_requests(3) <= scheduled_requests(1)

    def test_accepts_prebuilt_window(self):
        window = CoalescingWindow(2)
        scheduled = list(
            schedule_windowed(FrFcfsScheduler(CamConfig(entries=8)), self.BATCHES, window)
        )
        assert sum(len(batch) for batch in scheduled) == 4


# --------------------------------------------------------------------- #
# Properties on arbitrary streams
# --------------------------------------------------------------------- #

request_strategy = st.builds(
    R, st.integers(min_value=0, max_value=15), st.integers(min_value=0, max_value=15)
)
stream_strategy = st.lists(
    st.lists(request_strategy, min_size=0, max_size=12), min_size=1, max_size=12
)


class TestWindowProperties:
    @given(stream=stream_strategy)
    @settings(max_examples=60, deadline=None)
    def test_post_merge_counts_monotone_over_power_of_two_windows(self, stream):
        totals = [
            sum(f.unique for f in windowed_request_stream(stream, capacity=w)[1])
            for w in (1, 2, 4, 8)
        ]
        assert totals == sorted(totals, reverse=True)

    @given(stream=stream_strategy, capacity=st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_issued_requests_conserved_and_bounded(self, stream, capacity):
        _, flushes = windowed_request_stream(stream, capacity=capacity)
        assert sum(f.issued for f in flushes) == sum(len(batch) for batch in stream)
        per_batch_total = sum(
            f.unique for f in windowed_request_stream(stream, capacity=1)[1]
        )
        assert sum(f.unique for f in flushes) <= per_batch_total
        for flushed in flushes:
            assert flushed.unique <= flushed.issued
            assert flushed.batches <= capacity
            # Unique within a flush, sorted (kmer, pos)-major.
            pairs = [(r.packed_kmer, r.pos) for r in flushed.requests]
            assert pairs == sorted(set(pairs))

    @given(stream=stream_strategy)
    @settings(max_examples=30, deadline=None)
    def test_whole_stream_window_equals_global_dedupe(self, stream):
        merged, flushes = windowed_request_stream(stream, capacity=len(stream))
        assert len(flushes) == 1
        expected = sorted({(r.packed_kmer, r.pos) for batch in stream for r in batch})
        assert [(r.packed_kmer, r.pos) for r in merged] == expected
