"""Unit tests for repro.genome.sequence (synthetic genomes, variation)."""

from __future__ import annotations

import pytest

from repro.genome.alphabet import gc_content
from repro.genome.sequence import Reference, RepeatProfile, VariantModel, random_genome


class TestRandomGenome:
    def test_length(self):
        assert len(random_genome(500, seed=1)) == 500

    def test_alphabet(self):
        assert set(random_genome(300, seed=2)) <= set("ACGT")

    def test_deterministic_with_seed(self):
        assert random_genome(400, seed=3) == random_genome(400, seed=3)

    def test_different_seeds_differ(self):
        assert random_genome(400, seed=3) != random_genome(400, seed=4)

    def test_gc_content_roughly_respected(self):
        genome = random_genome(20_000, gc=0.6, seed=5)
        assert 0.5 < gc_content(genome) < 0.7

    def test_low_gc(self):
        genome = random_genome(20_000, gc=0.25, seed=6)
        assert gc_content(genome) < 0.4

    def test_repeats_create_duplicate_kmers(self):
        profile = RepeatProfile(repeat_fraction=0.8, repeat_unit_length=50)
        genome = random_genome(5000, repeat_profile=profile, seed=7)
        kmers = [genome[i : i + 20] for i in range(0, len(genome) - 20, 7)]
        assert len(set(kmers)) < len(kmers)

    def test_zero_length_raises(self):
        with pytest.raises(ValueError):
            random_genome(0)

    def test_bad_gc_raises(self):
        with pytest.raises(ValueError):
            random_genome(100, gc=1.0)

    def test_small_genome_works(self):
        assert len(random_genome(10, seed=8)) == 10


class TestRepeatProfile:
    def test_defaults_valid(self):
        RepeatProfile()

    def test_invalid_repeat_fraction(self):
        with pytest.raises(ValueError):
            RepeatProfile(repeat_fraction=0.99)

    def test_invalid_tandem_fraction(self):
        with pytest.raises(ValueError):
            RepeatProfile(tandem_fraction=0.9)

    def test_invalid_unit_length(self):
        with pytest.raises(ValueError):
            RepeatProfile(repeat_unit_length=0)


class TestReference:
    def test_paper_length_defaults_to_actual(self):
        ref = Reference(name="x", sequence="ACGTACGT")
        assert ref.paper_length == 8

    def test_scale_factor(self):
        ref = Reference(name="x", sequence="ACGT" * 10, paper_length=4000)
        assert ref.scale_factor == pytest.approx(100.0)

    def test_len(self):
        assert len(Reference(name="x", sequence="ACGT")) == 4

    def test_gc_property(self):
        assert Reference(name="x", sequence="GGCC").gc == 1.0

    def test_empty_sequence_raises(self):
        with pytest.raises(ValueError):
            Reference(name="x", sequence="")

    def test_invalid_symbols_raise(self):
        with pytest.raises(Exception):
            Reference(name="x", sequence="ACGN")


class TestVariantModel:
    def test_zero_rates_identity(self):
        model = VariantModel(substitution_rate=0.0, insertion_rate=0.0, deletion_rate=0.0)
        genome = random_genome(500, seed=9)
        assert model.apply(genome) == genome

    def test_substitutions_change_sequence(self):
        model = VariantModel(substitution_rate=0.2, insertion_rate=0.0, deletion_rate=0.0, seed=1)
        genome = random_genome(1000, seed=10)
        mutated = model.apply(genome)
        assert len(mutated) == len(genome)
        assert mutated != genome

    def test_insertions_lengthen(self):
        model = VariantModel(substitution_rate=0.0, insertion_rate=0.1, deletion_rate=0.0, seed=2)
        genome = random_genome(1000, seed=11)
        assert len(model.apply(genome)) > len(genome)

    def test_deletions_shorten(self):
        model = VariantModel(substitution_rate=0.0, insertion_rate=0.0, deletion_rate=0.1, seed=3)
        genome = random_genome(1000, seed=12)
        assert len(model.apply(genome)) < len(genome)

    def test_output_alphabet(self):
        model = VariantModel(substitution_rate=0.05, insertion_rate=0.05, deletion_rate=0.05, seed=4)
        assert set(model.apply(random_genome(500, seed=13))) <= set("ACGT")

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            VariantModel(substitution_rate=1.5)
