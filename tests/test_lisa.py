"""Unit tests for the LISA substrate: IP-BWT, learned index, LISA search."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testing import brute_force_find
from repro.genome.datasets import HUMAN_PAPER_LENGTH
from repro.index.fmindex import Interval
from repro.lisa.ipbwt import IPBWT, lisa_size_bytes
from repro.lisa.learned_index import LinearModel, PredictionStats, RecursiveModelIndex
from repro.lisa.search import LisaIndex, LisaSearchStats


@pytest.fixture(scope="module")
def ipbwt(small_reference) -> IPBWT:
    return IPBWT(small_reference, k=3)


@pytest.fixture(scope="module")
def lisa_exact(small_reference) -> LisaIndex:
    return LisaIndex(small_reference, k=3, use_learned_index=False)


@pytest.fixture(scope="module")
def lisa_learned(small_reference) -> LisaIndex:
    return LisaIndex(small_reference, k=3, use_learned_index=True)


class TestIPBWT:
    def test_length_matches_reference(self, ipbwt, small_reference):
        assert len(ipbwt) == len(small_reference) + 1

    def test_entries_sorted(self, ipbwt):
        assert ipbwt.is_sorted()

    def test_paper_example_entry(self):
        # Fig. 5(a): row 0 of the IP-BWT of CATAGA$ with k=2 is [$C, 3].
        ipbwt2 = IPBWT("CATAGA", k=2)
        assert ipbwt2[0].kmer == "$C"
        assert ipbwt2[0].paired_row == 3

    def test_paper_example_all_kmers(self):
        ipbwt2 = IPBWT("CATAGA", k=2)
        kmers = [ipbwt2[i].kmer for i in range(len(ipbwt2))]
        assert kmers == ["$C", "A$", "AG", "AT", "CA", "GA", "TA"]

    def test_step_matches_fm_index(self, ipbwt, fm_index, small_reference):
        kmer = small_reference[20:23]
        lisa_interval = ipbwt.step(kmer, Interval(0, len(ipbwt)))
        fm_interval = fm_index.backward_search(kmer)
        assert (lisa_interval.low, lisa_interval.high) == (fm_interval.low, fm_interval.high)

    def test_step_wrong_length_raises(self, ipbwt):
        with pytest.raises(ValueError):
            ipbwt.step("AC", Interval(0, 4))

    def test_partial_step_matches_fm(self, ipbwt, fm_index, small_reference):
        prefix = small_reference[100:102]
        interval = ipbwt.partial_step(prefix)
        fm_interval = fm_index.backward_search(prefix)
        assert (interval.low, interval.high) == (fm_interval.low, fm_interval.high)

    def test_partial_step_validates_length(self, ipbwt):
        with pytest.raises(ValueError):
            ipbwt.partial_step("ACG")

    def test_numeric_keys_monotone(self, ipbwt):
        keys = ipbwt.numeric_keys()
        assert np.all(np.diff(keys) >= 0)

    def test_numeric_key_consistent_with_lower_bound(self, ipbwt, small_reference):
        kmer = small_reference[40:43]
        keys = ipbwt.numeric_keys()
        for pos in (0, 7, 200):
            expected = ipbwt.lower_bound(kmer, pos)
            via_key = int(np.searchsorted(keys, ipbwt.numeric_key(kmer, pos)))
            assert via_key == expected

    def test_invalid_k_raises(self, small_reference):
        with pytest.raises(ValueError):
            IPBWT(small_reference, k=0)

    def test_size_model_linear_in_k(self):
        s21 = lisa_size_bytes(HUMAN_PAPER_LENGTH, 21)
        s42 = lisa_size_bytes(HUMAN_PAPER_LENGTH, 42)
        assert s42 < 2.2 * s21

    def test_size_model_invalid(self):
        with pytest.raises(ValueError):
            lisa_size_bytes(0, 21)


class TestLinearModel:
    def test_fit_exact_line(self):
        x = np.arange(10, dtype=float)
        model = LinearModel.fit(x, 3 * x + 1)
        assert model.slope == pytest.approx(3.0)
        assert model.intercept == pytest.approx(1.0)

    def test_fit_constant_input(self):
        model = LinearModel.fit(np.array([5.0, 5.0]), np.array([1.0, 3.0]))
        assert model.slope == 0.0
        assert model.predict(5.0) == pytest.approx(2.0)

    def test_fit_empty(self):
        model = LinearModel.fit(np.array([]), np.array([]))
        assert model.predict(10.0) == 0.0

    def test_parameter_count(self):
        assert LinearModel(1.0, 0.0).parameter_count == 2


class TestRecursiveModelIndex:
    @pytest.fixture(scope="class")
    def keys(self):
        rng = np.random.default_rng(0)
        return np.sort(rng.uniform(0, 1e6, size=3000))

    def test_lookup_returns_true_position(self, keys):
        rmi = RecursiveModelIndex(keys, fanout=32)
        for idx in (0, 100, 1500, 2999):
            position, _ = rmi.lookup(float(keys[idx]))
            assert keys[position] == keys[idx]

    def test_prediction_within_bounds(self, keys):
        rmi = RecursiveModelIndex(keys, fanout=16)
        assert 0 <= rmi.predict(float(keys[42])) < len(keys)

    def test_errors_reasonable_on_uniform_keys(self, keys):
        rmi = RecursiveModelIndex(keys, fanout=64)
        stats = rmi.error_stats(sample=500)
        assert stats.mean_error < len(keys) * 0.05

    def test_parameter_count_scales_with_fanout(self, keys):
        small = RecursiveModelIndex(keys, fanout=4)
        large = RecursiveModelIndex(keys, fanout=64)
        assert large.parameter_count > small.parameter_count

    def test_unsorted_keys_raise(self):
        with pytest.raises(ValueError):
            RecursiveModelIndex(np.array([3.0, 1.0, 2.0]))

    def test_empty_keys_raise(self):
        with pytest.raises(ValueError):
            RecursiveModelIndex(np.array([]))

    def test_prediction_stats_from_empty(self):
        stats = PredictionStats.from_errors(np.array([]))
        assert stats.mean_error == 0.0


class TestLisaSearch:
    def test_exact_lisa_matches_fm(self, lisa_exact, fm_index, small_reference):
        for start in range(0, 1500, 119):
            query = small_reference[start : start + 12]
            a = lisa_exact.backward_search(query)
            b = fm_index.backward_search(query)
            assert (a.low, a.high) == (b.low, b.high)

    def test_learned_lisa_matches_fm(self, lisa_learned, fm_index, small_reference):
        for start in range(0, 1500, 137):
            query = small_reference[start : start + 12]
            a = lisa_learned.backward_search(query)
            b = fm_index.backward_search(query)
            assert (a.low, a.high) == (b.low, b.high)

    def test_partial_chunk_lengths(self, lisa_learned, fm_index, small_reference):
        for length in (4, 5, 7, 8, 10, 11, 13):
            query = small_reference[300 : 300 + length]
            assert lisa_learned.occurrence_count(query) == fm_index.occurrence_count(query)

    def test_find_matches_brute_force(self, lisa_exact, small_reference):
        query = small_reference[250:265]
        assert lisa_exact.find(query) == brute_force_find(small_reference, query)

    def test_stats_iterations(self, lisa_exact, small_reference):
        stats = LisaSearchStats()
        lisa_exact.backward_search(small_reference[10:22], stats)
        assert stats.iterations == 4
        assert stats.binary_comparisons > 0

    def test_learned_stats_record_probes(self, lisa_learned, small_reference):
        stats = LisaSearchStats()
        lisa_learned.backward_search(small_reference[64:76], stats)
        assert stats.index_predictions > 0
        assert stats.mean_probe >= 0.0

    def test_empty_query_raises(self, lisa_learned):
        with pytest.raises(ValueError):
            lisa_learned.backward_search("")

    def test_iterations_for_query(self, lisa_exact):
        assert lisa_exact.iterations_for_query(12) == 4
        assert lisa_exact.iterations_for_query(13) == 5

    @given(st.integers(min_value=0, max_value=1900), st.integers(min_value=3, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_reference_substrings_found_property(
        self, lisa_exact, fm_index, small_reference, start, length
    ):
        query = small_reference[start : start + length]
        if len(query) < 3:
            return
        assert lisa_exact.occurrence_count(query) == fm_index.occurrence_count(query)
