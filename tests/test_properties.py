"""Property-based cross-module invariants (hypothesis).

These properties tie the layers together on randomly generated inputs:
whatever DNA text and queries hypothesis produces, the index structures
must agree with brute force and with each other, compression must be
lossless, and the BWT/suffix-array relationships must hold.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exma import chain
from repro.exma.search import ExmaSearch
from repro.exma.table import ExmaTable
from repro.genome.alphabet import reverse_complement
from repro.index.bwt import bwt, run_length_encode
from repro.index.fmindex import FMIndex
from repro.index.suffix_array import suffix_array
from repro.lisa.ipbwt import IPBWT

dna_text = st.text(alphabet="ACGT", min_size=8, max_size=120)
dna_query = st.text(alphabet="ACGT", min_size=1, max_size=12)


class TestIndexInvariants:
    @given(dna_text, dna_query)
    @settings(max_examples=40, deadline=None)
    def test_fm_index_matches_brute_force(self, text, query):
        fm = FMIndex(text)
        expected = [
            i for i in range(len(text) - len(query) + 1) if text[i : i + len(query)] == query
        ]
        assert fm.find(query) == expected

    @given(dna_text, dna_query)
    @settings(max_examples=30, deadline=None)
    def test_exma_agrees_with_fm_index(self, text, query):
        fm = FMIndex(text)
        search = ExmaSearch(ExmaTable(text, k=3))
        assert search.occurrence_count(query) == fm.occurrence_count(query)

    @given(dna_text)
    @settings(max_examples=30, deadline=None)
    def test_occurrence_count_of_reverse_complement_palindrome(self, text):
        # Searching a query and its reverse complement in the forward
        # reference are independent operations; both must be consistent
        # with brute force (regression guard for strand handling).
        fm = FMIndex(text)
        query = text[: min(6, len(text))]
        rc = reverse_complement(query)
        expected_rc = [
            i for i in range(len(text) - len(rc) + 1) if text[i : i + len(rc)] == rc
        ]
        assert fm.occurrence_count(rc) == len(expected_rc)

    @given(dna_text)
    @settings(max_examples=30, deadline=None)
    def test_bwt_is_permutation_with_one_sentinel(self, text):
        transformed = bwt(text)
        assert sorted(transformed) == sorted(text + "$")
        assert transformed.count("$") == 1

    @given(dna_text)
    @settings(max_examples=30, deadline=None)
    def test_run_length_encoding_is_lossless(self, text):
        transformed = bwt(text)
        runs = run_length_encode(transformed)
        assert "".join(symbol * count for symbol, count in runs) == transformed

    @given(dna_text)
    @settings(max_examples=30, deadline=None)
    def test_suffix_array_sorts_suffixes(self, text):
        terminated = text + "$"
        sa = suffix_array(terminated)
        suffixes = [terminated[i:] for i in sa]
        assert suffixes == sorted(suffixes)

    @given(dna_text)
    @settings(max_examples=25, deadline=None)
    def test_ipbwt_is_sorted_for_any_text(self, text):
        assert IPBWT(text, k=2).is_sorted()

    @given(dna_text)
    @settings(max_examples=25, deadline=None)
    def test_exma_increment_totals(self, text):
        k = 3
        table = ExmaTable(text, k=k)
        # One increment per position whose preceding k-mer is sentinel-free.
        assert table.increments.size == max(0, len(text) - k + 1)
        assert int(table.frequencies().sum()) == table.increments.size


class TestCompressionInvariants:
    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_chain_roundtrip_any_integers(self, values):
        array = np.array(sorted(values), dtype=np.int64)
        assert np.array_equal(chain.decompress(chain.compress(array)), array)

    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_chain_size_accounting_consistent(self, values):
        array = np.array(sorted(values), dtype=np.int64)
        total = sum(line.compressed_bytes for line in chain.compress(array))
        assert total == chain.compressed_size_bytes(array)
