"""Regression locks on empty/idle edge cases across the pipeline.

A long-lived serving deployment hits these constantly — an admission
window expiring on an empty queue, a flush with zero surviving requests,
a drained stream — and none of them may crash, divide by zero, or report
a nonsense aggregate.  These tests pin today's (correct) behavior so a
future refactor cannot silently regress the idle path.

The serving-side idle edge (admission window timing out with no queued
queries) is locked in ``tests/test_serving.py::TestAdmissionWindow``.
"""

from __future__ import annotations

import pytest

from repro.accel.exma_accelerator import ExmaAccelerator, WindowedRunResult
from repro.engine.backends import ExmaBackend
from repro.engine.engine import QueryEngine
from repro.engine.window import CoalescingWindow
from repro.exma.table import ExmaTable
from repro.genome.sequence import random_genome


@pytest.fixture(scope="module")
def accelerator():
    table = ExmaTable(random_genome(1200, seed=3), k=4)
    return ExmaAccelerator(table, None)


@pytest.fixture(scope="module")
def engine():
    table = ExmaTable(random_genome(1200, seed=3), k=4)
    return QueryEngine(ExmaBackend(table=table))


class TestEmptyAcceleratorRuns:
    def test_run_empty_batch(self, accelerator):
        result = accelerator.run([])
        assert result.requests == 0
        assert result.total_cycles == 0
        assert result.dram_requests == 0
        # The model floors bases at 1 and seconds at an epsilon so derived
        # rates stay finite instead of dividing by zero.
        assert result.bases_processed == 1
        assert result.seconds > 0

    def test_run_stream_empty_iterator(self, accelerator):
        result = accelerator.run_stream(iter([]))
        assert result.flushes == []
        assert result.windows == 0
        assert result.batches == 0
        assert result.issued == 0

    def test_run_windowed_empty_stream(self, accelerator):
        result = accelerator.run_windowed(iter([]), window=2)
        assert result.flushes == []
        assert result.batches == 0
        assert result.issued == 0
        assert result.merge_ratio == 1.0


class TestEmptyWindowedAggregates:
    def test_zero_flush_aggregates_are_finite(self):
        result = WindowedRunResult(
            name="empty", flushes=[], capacity=2, batches=0, issued=0
        )
        assert result.requests == 0
        assert result.bases_processed == 0
        assert result.seconds == 0
        # Ratio-shaped aggregates take their identity values, not NaN.
        assert result.merge_ratio == 1.0
        assert result.bandwidth_utilization == 0.0
        assert result.row_hit_rate == 0.0


class TestEmptyCoalescingWindow:
    def test_flush_of_untouched_window_is_none(self):
        assert CoalescingWindow(2).flush() is None

    def test_empty_batches_still_count_toward_capacity(self, engine, accelerator):
        """Two pushed-but-empty request streams fill a W=2 window: the
        flush records 2 batches and 0 requests, and replaying it is a
        clean no-op run."""
        window = CoalescingWindow(2)
        assert window.push(engine.search_batch([]).stats.requests) is None
        flushed = window.push(engine.search_batch([]).stats.requests)
        assert flushed is not None
        assert flushed.batches == 2
        assert flushed.unique == 0
        assert flushed.issued == 0
        replayed = accelerator.run(flushed)
        assert replayed.requests == 0
        assert replayed.total_cycles == 0

    def test_replay_flush_matches_run_on_empty_flush(self, engine, accelerator):
        """replay_flush (the serving unit of work) degrades identically
        to run() on an all-empty flush."""
        window = CoalescingWindow(2)
        window.push(engine.search_batch([]).stats.requests)
        flushed = window.push(engine.search_batch([]).stats.requests)
        assert accelerator.replay_flush(flushed) == accelerator.run(flushed)


class TestParallelReplayEdges:
    """The parallel replay layer must degrade exactly like serial on the
    idle edges: an empty stream fans out zero epochs, a single flush runs
    inline, and both report the same all-zero aggregates."""

    def test_run_stream_empty_iterator_parallel(self, accelerator):
        result = accelerator.run_stream(iter([]), replay_workers=2)
        assert result.flushes == []
        assert result.windows == 0
        assert result.batches == 0
        assert result.issued == 0
        accelerator.close()

    def test_run_windowed_empty_stream_parallel(self, accelerator):
        result = accelerator.run_windowed(iter([]), window=2, replay_workers=2)
        assert result == accelerator.run_windowed(iter([]), window=2)
        accelerator.close()

    def test_single_flush_runs_inline(self, engine, accelerator):
        """One epoch is not worth a pool round-trip: the single-flush
        stream replays inline and still equals the serial result."""
        requests, _ = engine.request_stream(["ACGTACGT", "TTTTACGT"])
        serial = accelerator.run_windowed([requests], window=4)
        parallel = accelerator.run_windowed([requests], window=4, replay_workers=2)
        assert parallel == serial
        accelerator.close()

    def test_all_empty_flushes_parallel(self, engine, accelerator):
        """Zero-request flushes survive the pool round-trip unchanged."""
        streams = [engine.search_batch([]).stats.requests for _ in range(4)]
        serial = accelerator.run_windowed(streams, window=1)
        parallel = accelerator.run_windowed(streams, window=1, replay_workers=2)
        assert parallel == serial
        assert parallel.requests == 0
        assert parallel.batches == 4
        accelerator.close()


class TestEmptyEngineBatch:
    def test_search_batch_empty(self, engine):
        result = engine.search_batch([])
        assert result.intervals == []
        assert result.stats.requests.chunks() == []
        assert len(result.stats.requests) == 0
