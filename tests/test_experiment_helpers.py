"""Unit tests for experiment helper functions and formatters."""

from __future__ import annotations

import pytest

from repro.experiments.fig06_prior import cpu_throughput_comparison, size_vs_step
from repro.experiments.fig10_exma_tradeoff import exma_size_sweep
from repro.experiments.fig11_12_increments import bucket_edges
from repro.experiments.fig18_throughput import (
    concurrency_gain,
    cpu_lisa_baseline,
    exma_software_throughput,
)
from repro.experiments.common import build_workload
from repro.experiments import (
    format_fig1,
    format_fig13,
    format_fig18,
    format_fig19,
    format_fig20,
    format_table2,
    run_fig1,
    run_fig13,
    run_fig18,
    run_fig19_20,
    run_table2,
)


class TestFig6Helpers:
    def test_size_vs_step_ranges(self):
        fm_sizes, lisa_sizes = size_vs_step(max_step=32)
        assert set(fm_sizes) == set(range(1, 17))
        assert set(lisa_sizes) == set(range(1, 33))
        assert all(fm_sizes[k] < fm_sizes[k + 1] for k in range(1, 16))

    def test_cpu_throughput_comparison_uses_error(self):
        accurate = cpu_throughput_comparison(lisa_mean_error=1.0)
        sloppy = cpu_throughput_comparison(lisa_mean_error=5000.0)
        assert sloppy["LISA-21"] < accurate["LISA-21"]
        assert accurate["FM-1"] == sloppy["FM-1"] == 1.0


class TestFig10Helpers:
    def test_size_sweep_bounds(self):
        rows = exma_size_sweep(8, 17)
        assert [row.step for row in rows] == list(range(8, 18))
        assert all(row.total_gb > 0 for row in rows)

    def test_size_sweep_monotone_total(self):
        rows = exma_size_sweep(8, 17)
        totals = [row.total_gb for row in rows]
        assert totals == sorted(totals)


class TestFig11Helpers:
    def test_bucket_edges_scale_with_reference(self):
        small = bucket_edges(10_000)
        large = bucket_edges(10_000_000)
        assert max(large) > max(small)
        assert all(edge >= 2 for edge in small)
        assert small == sorted(small)


class TestFig18Helpers:
    def test_concurrency_gain_formula(self):
        assert concurrency_gain(512, 64, 0.5) == pytest.approx(4.0)
        assert concurrency_gain(32, 64, 0.5) == 1.0

    def test_concurrency_gain_invalid(self):
        with pytest.raises(ValueError):
            concurrency_gain(cpu_mshrs=0)

    def test_cpu_baseline_slower_on_larger_genomes(self):
        assert cpu_lisa_baseline("pinus") < cpu_lisa_baseline("human")

    def test_exma_software_beats_cpu_baseline(self):
        workload = build_workload("human", genome_length=8000, k=4, query_count=10)
        assert exma_software_throughput(workload, "human") > cpu_lisa_baseline("human")


class TestFormatters:
    def test_format_fig1(self):
        rows = run_fig1(genome_length=6000, read_count=3)
        text = format_fig1(rows)
        assert "FM-Index" in text and "alignment-Illumina" in text

    def test_format_fig13(self):
        result = run_fig13(genome_length=6000, k=4, mtl_epochs=30, samples_per_kmer=10)
        text = format_fig13(result)
        assert "parameters" in text

    def test_format_fig18(self):
        result = run_fig18(genome_length=8000, datasets=("human",))
        text = format_fig18(result)
        assert "EX-acc" in text and "human" in text

    def test_format_fig19_and_20(self):
        result = run_fig19_20(datasets=("human",), genome_length=6000, read_count=3)
        assert "gmean" in format_fig19(result)
        assert "gmean" in format_fig20(result)

    def test_format_table2(self):
        text = format_table2(run_table2())
        assert "MEDAL" in text and "Mbase/s" in text
