"""Unit tests for repro.genome.io (FASTA/FASTQ)."""

from __future__ import annotations

import pytest

from repro.genome.io import (
    FastaRecord,
    FastqRecord,
    FormatError,
    parse_fasta,
    parse_fastq,
    read_fasta,
    read_fastq,
    validate_reference_record,
    write_fasta,
    write_fastq,
)


class TestFasta:
    def test_parse_single_record(self):
        records = list(parse_fasta([">chr1", "ACGT", "GGTT"]))
        assert records == [FastaRecord(name="chr1", sequence="ACGTGGTT")]

    def test_parse_multiple_records(self):
        records = list(parse_fasta([">a", "AC", ">b", "GT"]))
        assert [r.name for r in records] == ["a", "b"]

    def test_parse_lowercase_normalised(self):
        records = list(parse_fasta([">a", "acgt"]))
        assert records[0].sequence == "ACGT"

    def test_parse_blank_lines_skipped(self):
        records = list(parse_fasta([">a", "", "ACGT", ""]))
        assert records[0].sequence == "ACGT"

    def test_sequence_before_header_raises(self):
        with pytest.raises(FormatError):
            list(parse_fasta(["ACGT"]))

    def test_empty_header_raises(self):
        with pytest.raises(FormatError):
            list(parse_fasta([">", "ACGT"]))

    def test_roundtrip_via_files(self, tmp_path):
        path = tmp_path / "ref.fa"
        records = [FastaRecord("chr1", "ACGT" * 30), FastaRecord("chr2", "GGTTAA")]
        write_fasta(path, records, width=13)
        assert read_fasta(path) == records

    def test_write_wraps_lines(self, tmp_path):
        path = tmp_path / "ref.fa"
        write_fasta(path, [FastaRecord("c", "A" * 100)], width=10)
        lines = path.read_text().splitlines()
        assert all(len(line) <= 10 for line in lines[1:])

    def test_write_invalid_width_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_fasta(tmp_path / "x.fa", [], width=0)

    def test_validate_reference_record_accepts_dna(self):
        validate_reference_record(FastaRecord("c", "ACGT"))

    def test_validate_reference_record_rejects_empty(self):
        with pytest.raises(FormatError):
            validate_reference_record(FastaRecord("c", ""))

    def test_validate_reference_record_rejects_ambiguous(self):
        with pytest.raises(Exception):
            validate_reference_record(FastaRecord("c", "ACGN"))


class TestFastq:
    def test_parse_single_record(self):
        records = list(parse_fastq(["@r1", "ACGT", "+", "IIII"]))
        assert records == [FastqRecord(name="r1", sequence="ACGT", quality="IIII")]

    def test_parse_multiple_records(self):
        lines = ["@r1", "AC", "+", "II", "@r2", "GT", "+", "II"]
        assert [r.name for r in parse_fastq(lines)] == ["r1", "r2"]

    def test_missing_plus_raises(self):
        with pytest.raises(FormatError):
            list(parse_fastq(["@r1", "ACGT", "IIII", "@r2"]))

    def test_truncated_record_raises(self):
        with pytest.raises(FormatError):
            list(parse_fastq(["@r1", "ACGT"]))

    def test_header_without_at_raises(self):
        with pytest.raises(FormatError):
            list(parse_fastq(["r1", "ACGT", "+", "IIII"]))

    def test_length_mismatch_raises(self):
        with pytest.raises(FormatError):
            FastqRecord(name="r", sequence="ACGT", quality="II")

    def test_roundtrip_via_files(self, tmp_path):
        path = tmp_path / "reads.fq"
        records = [FastqRecord("r1", "ACGT", "IIII"), FastqRecord("r2", "GG", "!!")]
        write_fastq(path, records)
        assert read_fastq(path) == records

    def test_parse_skips_blank_lines_between_records(self):
        lines = ["@r1", "AC", "+", "II", "", "@r2", "GT", "+", "II"]
        assert len(list(parse_fastq(lines))) == 2
