"""Unit tests for the accelerator layer: config, metrics, EXMA accelerator, baselines."""

from __future__ import annotations

import pytest

from repro.accel.baselines import (
    CpuThroughputModel,
    SoftwareAlgorithm,
    asic_model,
    exma_analytic_model,
    finder_model,
    fpga_model,
    gpu_model,
    medal_model,
    standard_accelerator_suite,
)
from repro.accel.config import (
    CpuConfig,
    ExmaAcceleratorConfig,
    ex_2stage_config,
    ex_acc_config,
    exma_full_config,
)
from repro.accel.exma_accelerator import ExmaAccelerator
from repro.accel.metrics import ApplicationRun, SearchThroughput, geometric_mean, normalise
from repro.exma.search import ExmaSearch
from repro.hw.dram import PagePolicy


class TestConfig:
    def test_cpu_config_table1(self):
        cpu = CpuConfig()
        assert cpu.cores == 16 and cpu.llc_mb == 40 and cpu.llc_mshrs == 64

    def test_accelerator_defaults_table1(self):
        config = ExmaAcceleratorConfig()
        assert config.pe_arrays == 4
        assert config.cam_entries == 512
        assert config.index_cache_bytes == 32 * 1024
        assert config.base_cache_bytes == 1024 * 1024

    def test_variant_configs_stack_features(self):
        assert ex_acc_config().two_stage_scheduling is False
        assert ex_acc_config().page_policy is PagePolicy.CLOSE
        assert ex_2stage_config().two_stage_scheduling is True
        assert exma_full_config().page_policy is PagePolicy.DYNAMIC

    def test_with_overrides(self):
        config = exma_full_config().with_overrides(pe_arrays=8)
        assert config.pe_arrays == 8
        assert config.cam_entries == 512

    def test_invalid_config_raises(self):
        with pytest.raises(ValueError):
            ExmaAcceleratorConfig(pe_arrays=0)

    def test_invalid_cpu_config_raises(self):
        with pytest.raises(ValueError):
            CpuConfig(cores=0)


class TestMetrics:
    def test_mbase_per_second(self):
        result = SearchThroughput("x", bases_processed=5_000_000, seconds=2.0,
                                  accelerator_power_w=1.0, dram_power_w=72.0)
        assert result.mbase_per_second == pytest.approx(2.5)

    def test_per_watt(self):
        result = SearchThroughput("x", bases_processed=73_000_000, seconds=1.0,
                                  accelerator_power_w=1.0, dram_power_w=72.0)
        assert result.mbase_per_second_per_watt == pytest.approx(1.0)

    def test_speedup_over(self):
        fast = SearchThroughput("f", 100, 1.0, 1.0, 1.0)
        slow = SearchThroughput("s", 50, 1.0, 1.0, 1.0)
        assert fast.speedup_over(slow) == pytest.approx(2.0)

    def test_invalid_seconds(self):
        with pytest.raises(ValueError):
            SearchThroughput("x", 1, 0.0, 1.0, 1.0)

    def test_application_run_fraction(self):
        run = ApplicationRun("align", "human", fm_index_seconds=8, dynamic_programming_seconds=1,
                             other_seconds=1)
        assert run.fm_index_fraction == pytest.approx(0.8)

    def test_amdahl_speedup(self):
        run = ApplicationRun("align", "human", 8, 1, 1)
        assert run.speedup_with_search_speedup(1e9) == pytest.approx(5.0, rel=1e-3)
        assert run.speedup_with_search_speedup(1.0) == pytest.approx(1.0)

    def test_normalise(self):
        assert normalise({"a": 2.0, "b": 4.0}, "a") == {"a": 1.0, "b": 2.0}

    def test_normalise_missing_baseline(self):
        with pytest.raises(KeyError):
            normalise({"a": 1.0}, "z")

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_invalid(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestCpuThroughputModel:
    def test_larger_k_faster_when_same_costs(self):
        model = CpuThroughputModel()
        fm1 = SoftwareAlgorithm("FM-1", 1, structure_size_gb=2.0)
        fm4 = SoftwareAlgorithm("FM-4", 4, structure_size_gb=2.0)
        assert model.bases_per_second(fm4) > model.bases_per_second(fm1)

    def test_tlb_penalty_slows_huge_structures(self):
        model = CpuThroughputModel()
        small = SoftwareAlgorithm("small", 4, structure_size_gb=2.0)
        huge = SoftwareAlgorithm("huge", 4, structure_size_gb=400.0)
        assert model.bases_per_second(huge) < model.bases_per_second(small)

    def test_scan_overhead_slows_search(self):
        model = CpuThroughputModel()
        clean = SoftwareAlgorithm("clean", 21, structure_size_gb=16.0)
        erroneous = SoftwareAlgorithm(
            "err", 21, scan_entries_per_lookup=3000.0, structure_size_gb=16.0
        )
        assert model.bases_per_second(erroneous) < model.bases_per_second(clean)

    def test_throughput_record(self):
        model = CpuThroughputModel()
        record = model.throughput(SoftwareAlgorithm("FM-1", 1))
        assert record.mbase_per_second > 0
        assert record.total_power_w > 72.0


class TestBaselineAccelerators:
    def test_table2_ordering(self):
        results = {m.name: m.throughput(dataset_size_gb=128.0) for m in standard_accelerator_suite()}
        assert results["ASIC"].mbase_per_second < results["FPGA"].mbase_per_second
        assert results["FPGA"].mbase_per_second < results["MEDAL"].mbase_per_second
        assert results["MEDAL"].mbase_per_second < results["EXMA"].mbase_per_second
        assert results["EXMA"].mbase_per_second > results["GPU"].mbase_per_second

    def test_exma_beats_medal_by_3_to_7x(self):
        medal = medal_model().throughput(dataset_size_gb=128.0)
        exma = exma_analytic_model().throughput(dataset_size_gb=128.0)
        ratio = exma.mbase_per_second / medal.mbase_per_second
        assert 3.0 < ratio < 8.0

    def test_exma_best_efficiency(self):
        results = [m.throughput(dataset_size_gb=128.0) for m in standard_accelerator_suite()]
        best = max(results, key=lambda r: r.mbase_per_second_per_watt)
        assert best.name == "EXMA"

    def test_bandwidth_utilization_ordering(self):
        asic = asic_model().throughput().bandwidth_utilization
        medal = medal_model().throughput().bandwidth_utilization
        exma = exma_analytic_model().throughput().bandwidth_utilization
        assert asic < medal < exma

    def test_finder_hurt_by_small_internal_memory(self):
        small_dataset = finder_model().throughput(dataset_size_gb=2.0)
        large_dataset = finder_model().throughput(dataset_size_gb=128.0)
        assert large_dataset.mbase_per_second < small_dataset.mbase_per_second

    def test_gpu_power_dominates_efficiency(self):
        gpu = gpu_model().throughput()
        fpga = fpga_model().throughput()
        assert gpu.mbase_per_second_per_watt < fpga.mbase_per_second_per_watt

    def test_larger_exma_error_lowers_throughput(self):
        accurate = exma_analytic_model(mean_error_entries=10.0).throughput()
        sloppy = exma_analytic_model(mean_error_entries=2000.0).throughput()
        assert sloppy.mbase_per_second < accurate.mbase_per_second


class TestExmaAcceleratorModel:
    @pytest.fixture(scope="class")
    def requests(self, exma_table, mtl_index):
        search = ExmaSearch(exma_table, index=mtl_index)
        reference_length = exma_table.reference_length
        queries = []
        doubled = exma_table._text  # sentinel-terminated reference
        for start in range(0, reference_length - 20, 80):
            queries.append(doubled[start : start + 16])
        stream, _ = search.request_stream(queries)
        return stream

    @pytest.fixture(scope="class")
    def scaled_config(self):
        return exma_full_config().with_overrides(
            base_cache_bytes=4096, index_cache_bytes=1024, cam_entries=64
        )

    def test_run_produces_positive_throughput(self, exma_table, mtl_index, requests, scaled_config):
        accelerator = ExmaAccelerator(exma_table, mtl_index, scaled_config)
        result = accelerator.run(requests, name="EXMA")
        assert result.throughput.mbase_per_second > 0
        assert result.total_cycles > 0
        assert result.dram_requests > 0

    def test_bases_processed_scales_with_requests(self, exma_table, mtl_index, requests, scaled_config):
        accelerator = ExmaAccelerator(exma_table, mtl_index, scaled_config)
        full = accelerator.run(requests)
        half = accelerator.run(requests[: len(requests) // 2])
        assert full.bases_processed > half.bases_processed

    def test_cache_stats_populated(self, exma_table, mtl_index, requests, scaled_config):
        result = ExmaAccelerator(exma_table, mtl_index, scaled_config).run(requests)
        assert result.base_cache.accesses == len(requests)
        assert 0.0 <= result.base_cache.hit_rate <= 1.0
        assert 0.0 <= result.index_cache.hit_rate <= 1.0

    def test_dynamic_page_policy_raises_row_hits(self, exma_table, mtl_index, requests):
        close_cfg = ex_acc_config().with_overrides(
            base_cache_bytes=4096, index_cache_bytes=1024, cam_entries=64
        )
        dyn_cfg = exma_full_config().with_overrides(
            base_cache_bytes=4096, index_cache_bytes=1024, cam_entries=64
        )
        close_run = ExmaAccelerator(exma_table, mtl_index, close_cfg).run(requests)
        dyn_run = ExmaAccelerator(exma_table, mtl_index, dyn_cfg).run(requests)
        assert dyn_run.dram.row_hit_rate >= close_run.dram.row_hit_rate

    def test_exma_variant_fastest(self, exma_table, mtl_index, requests):
        overrides = dict(base_cache_bytes=4096, index_cache_bytes=1024, cam_entries=64)
        runs = {
            "EX-acc": ExmaAccelerator(
                exma_table, mtl_index, ex_acc_config().with_overrides(**overrides)
            ).run(requests),
            "EXMA": ExmaAccelerator(
                exma_table, mtl_index, exma_full_config().with_overrides(**overrides)
            ).run(requests),
        }
        assert runs["EXMA"].total_cycles <= runs["EX-acc"].total_cycles

    def test_energy_accounting_positive(self, exma_table, mtl_index, requests, scaled_config):
        result = ExmaAccelerator(exma_table, mtl_index, scaled_config).run(requests)
        assert result.accelerator_energy_j > 0
        assert result.dram_energy_j > 0

    def test_run_without_index_still_correct_shape(self, exma_table, requests, scaled_config):
        result = ExmaAccelerator(exma_table, None, scaled_config).run(requests)
        assert result.inference_cycles == 0
        assert result.throughput.mbase_per_second > 0

    def test_empty_request_stream(self, exma_table, mtl_index, scaled_config):
        result = ExmaAccelerator(exma_table, mtl_index, scaled_config).run([])
        assert result.requests == 0
        assert result.total_cycles == 0
