"""Unit tests for the DDR4 timing/energy model (repro.hw.dram)."""

from __future__ import annotations

import pytest

from repro.hw.dram import (
    BURST_BYTES,
    DDR4Config,
    DRAMEnergyModel,
    DRAMModel,
    MemoryRequest,
    PagePolicy,
    rows_for_bytes,
)


class TestDDR4Config:
    def test_table1_defaults(self):
        config = DDR4Config()
        assert config.channels == 4
        assert config.dimms_per_channel == 3
        assert config.ranks_per_dimm == 4
        assert config.chips_per_rank == 16
        assert config.row_bytes == 2048
        assert (config.trcd, config.tcas, config.trp) == (16, 16, 16)

    def test_banks_per_channel(self):
        assert DDR4Config().banks_per_channel == 3 * 4 * 2 * 2

    def test_peak_bandwidth(self):
        config = DDR4Config()
        assert config.peak_bandwidth_gbs == pytest.approx(4 * 16 * 1200 * 1e6 / 1e9)

    def test_burst_cycles(self):
        config = DDR4Config()
        assert config.burst_cycles(64) == 4
        assert config.burst_cycles(1) == 1
        assert config.burst_cycles(2048) == 128

    def test_burst_cycles_invalid(self):
        with pytest.raises(ValueError):
            DDR4Config().burst_cycles(0)

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            DDR4Config(channels=0)

    def test_invalid_timing_raises(self):
        with pytest.raises(ValueError):
            DDR4Config(trcd=-1)

    def test_capacity(self):
        assert DDR4Config().total_capacity_gb == 384


class TestPagePolicies:
    def _same_row_trace(self, count=8):
        return [MemoryRequest(row=5, nbytes=64, stream=i) for i in range(count)]

    def test_close_page_never_hits(self):
        model = DRAMModel(page_policy=PagePolicy.CLOSE)
        stats = model.process(self._same_row_trace())
        assert stats.row_hits == 0
        assert stats.row_misses + stats.row_conflicts == stats.requests

    def test_open_page_hits_on_same_row(self):
        model = DRAMModel(page_policy=PagePolicy.OPEN)
        stats = model.process(self._same_row_trace())
        assert stats.row_hits == 7
        assert stats.row_misses == 1

    def test_open_page_conflict_on_same_bank_different_row(self):
        config = DDR4Config()
        rows = [0, config.banks_per_channel, 0]  # same bank, alternating rows
        model = DRAMModel(config, page_policy=PagePolicy.OPEN)
        stats = model.process([MemoryRequest(row=r) for r in rows])
        assert stats.row_conflicts >= 1

    def test_dynamic_page_respects_hint(self):
        model = DRAMModel(page_policy=PagePolicy.DYNAMIC)
        trace = [
            MemoryRequest(row=9, keep_open_hint=True, stream=0),
            MemoryRequest(row=9, keep_open_hint=False, stream=1),
            MemoryRequest(row=9, keep_open_hint=False, stream=2),
        ]
        stats = model.process(trace)
        assert stats.row_hits == 1  # second access hits, third misses again

    def test_dynamic_beats_close_on_paired_accesses(self):
        trace = []
        for i in range(0, 64, 2):
            trace.append(MemoryRequest(row=i, keep_open_hint=True, stream=i))
            trace.append(MemoryRequest(row=i, keep_open_hint=False, stream=i))
        close_stats = DRAMModel(page_policy=PagePolicy.CLOSE).process(trace)
        dyn_stats = DRAMModel(page_policy=PagePolicy.DYNAMIC).process(trace)
        assert dyn_stats.row_hit_rate > close_stats.row_hit_rate
        assert dyn_stats.total_cycles <= close_stats.total_cycles


class TestTimingAndStats:
    def test_single_access_latency(self):
        config = DDR4Config()
        stats = DRAMModel(config).process([MemoryRequest(row=0)])
        assert stats.total_cycles == config.trcd + config.tcas + config.burst_cycles(64)

    def test_bytes_transferred(self):
        stats = DRAMModel().process([MemoryRequest(row=i, nbytes=64) for i in range(10)])
        assert stats.bytes_transferred == 640

    def test_bandwidth_utilization_bounded(self):
        stats = DRAMModel().process([MemoryRequest(row=i) for i in range(50)])
        assert 0.0 < stats.bandwidth_utilization <= 1.0

    def test_larger_payload_increases_utilization(self):
        small = DRAMModel().process([MemoryRequest(row=i, nbytes=64, stream=i) for i in range(40)])
        large = DRAMModel().process([MemoryRequest(row=i, nbytes=512, stream=i) for i in range(40)])
        assert large.bandwidth_utilization > small.bandwidth_utilization

    def test_independent_streams_overlap(self):
        serial = DRAMModel().process([MemoryRequest(row=i, stream=0) for i in range(20)])
        parallel = DRAMModel().process([MemoryRequest(row=i, stream=i) for i in range(20)])
        assert parallel.total_cycles <= serial.total_cycles

    def test_empty_trace(self):
        stats = DRAMModel().process([])
        assert stats.requests == 0
        assert stats.total_cycles == 0
        assert stats.row_hit_rate == 0.0

    def test_invalid_nbytes_raises(self):
        with pytest.raises(ValueError):
            DRAMModel().process([MemoryRequest(row=0, nbytes=0)])

    def test_address_bus_busy_counts_commands(self):
        stats = DRAMModel(page_policy=PagePolicy.CLOSE).process(
            [MemoryRequest(row=i) for i in range(5)]
        )
        # Close page: first touch of a bank is a miss (ACT + RD = 2 slots).
        assert stats.address_bus_busy_cycles == 10

    def test_seconds_conversion(self):
        stats = DRAMModel().process([MemoryRequest(row=0)])
        assert stats.seconds(1200.0) == pytest.approx(stats.total_cycles / 1.2e9)

    def test_seconds_invalid_clock(self):
        stats = DRAMModel().process([MemoryRequest(row=0)])
        with pytest.raises(ValueError):
            stats.seconds(0)


class TestEnergyModel:
    def test_energy_positive(self):
        stats = DRAMModel().process([MemoryRequest(row=i) for i in range(10)])
        assert stats.energy_nj > 0

    def test_more_activations_more_energy(self):
        hits = DRAMModel(page_policy=PagePolicy.OPEN).process(
            [MemoryRequest(row=0) for _ in range(32)]
        )
        misses = DRAMModel(page_policy=PagePolicy.CLOSE).process(
            [MemoryRequest(row=0) for _ in range(32)]
        )
        assert misses.energy_nj > hits.energy_nj

    def test_access_energy_formula(self):
        model = DRAMEnergyModel()
        energy = model.access_energy_nj(activations=2, reads_64b=3, precharges=2, cycles=0)
        assert energy == pytest.approx(2 * 2.7 + 3 * 4.2 + 2 * 1.7)


class TestRowsForBytes:
    def test_single_row(self):
        assert rows_for_bytes(0, 64, 2048) == [0]

    def test_spanning_rows(self):
        assert rows_for_bytes(2000, 100, 2048) == [0, 1]

    def test_exact_boundary(self):
        assert rows_for_bytes(2048, 2048, 2048) == [1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            rows_for_bytes(0, 0, 2048)
        with pytest.raises(ValueError):
            rows_for_bytes(0, 64, 0)

    def test_burst_constant(self):
        assert BURST_BYTES == 64
