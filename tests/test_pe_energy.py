"""Unit tests for the PE-array inference engine and energy accounting."""

from __future__ import annotations

import pytest

from repro.hw.energy import (
    CPU_POWER_W,
    DRAM_SYSTEM_POWER_W,
    EXMA_ACCELERATOR_AREA_MM2,
    EXMA_ACCELERATOR_LEAKAGE_W,
    EXMA_COMPONENTS,
    EnergyLedger,
    SystemEnergyBreakdown,
)
from repro.hw.pe_array import InferenceEngine, PEArrayConfig


class TestPEArrayConfig:
    def test_table1_defaults(self):
        config = PEArrayConfig()
        assert config.arrays == 4
        assert config.rows == config.cols == 8
        assert config.clock_mhz == 800.0

    def test_total_pes(self):
        assert PEArrayConfig().total_pes == 4 * 64

    def test_macs_per_cycle(self):
        assert PEArrayConfig(arrays=2).macs_per_cycle == 128

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            PEArrayConfig(arrays=0)

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            PEArrayConfig(clock_mhz=0)


class TestInferenceEngine:
    def test_single_lookup_is_one_cycle(self):
        # One shared node + one leaf is ~42 MACs, well within 256 MACs/cycle.
        cost = InferenceEngine().lookup_cost()
        assert cost.cycles == 1
        assert cost.macs == InferenceEngine.SHARED_NODE_MACS + InferenceEngine.LEAF_MACS

    def test_energy_scales_with_macs(self):
        engine = InferenceEngine()
        single = engine.lookup_cost()
        double = engine.lookup_cost(shared_nodes=2, leaves=2)
        assert double.energy_pj > single.energy_pj

    def test_batch_cost_scales(self):
        engine = InferenceEngine()
        small = engine.batch_cost(10)
        large = engine.batch_cost(1000)
        assert large.cycles > small.cycles
        assert large.energy_pj == pytest.approx(100 * small.energy_pj)

    def test_batch_zero_lookups(self):
        cost = InferenceEngine().batch_cost(0)
        assert cost.cycles == 0
        assert cost.energy_pj == 0.0

    def test_more_arrays_fewer_cycles(self):
        two = InferenceEngine(PEArrayConfig(arrays=2)).batch_cost(10000)
        eight = InferenceEngine(PEArrayConfig(arrays=8)).batch_cost(10000)
        assert eight.cycles < two.cycles

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            InferenceEngine().lookup_cost(shared_nodes=-1)
        with pytest.raises(ValueError):
            InferenceEngine().batch_cost(-1)

    def test_cycles_to_seconds(self):
        engine = InferenceEngine()
        assert engine.cycles_to_seconds(800_000_000) == pytest.approx(1.0)


class TestTable1Constants:
    def test_component_inventory(self):
        names = {c.name for c in EXMA_COMPONENTS}
        assert {"inference_engine", "scheduling_queue", "index_cache", "base_cache",
                "decompress", "sched_and_row", "dma_ctrl"} == names

    def test_total_area_matches_reported(self):
        total = sum(c.area_mm2 for c in EXMA_COMPONENTS)
        assert total == pytest.approx(EXMA_ACCELERATOR_AREA_MM2, rel=0.05)

    def test_leakage_value(self):
        assert EXMA_ACCELERATOR_LEAKAGE_W == pytest.approx(0.2238)

    def test_system_power_constants(self):
        assert DRAM_SYSTEM_POWER_W == 72.0
        assert CPU_POWER_W > 0


class TestEnergyLedger:
    def test_record_and_dynamic_energy(self):
        ledger = EnergyLedger()
        ledger.record("base_cache", 100)
        ledger.record("inference_engine", 10)
        expected_pj = 100 * 17.2 + 10 * 0.25
        assert ledger.dynamic_energy_j() == pytest.approx(expected_pj * 1e-12)

    def test_unknown_component_raises(self):
        ledger = EnergyLedger()
        ledger.record("warp_drive")
        with pytest.raises(KeyError):
            ledger.dynamic_energy_j()

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            EnergyLedger().record("base_cache", -1)

    def test_leakage_energy(self):
        assert EnergyLedger().leakage_energy_j(2.0) == pytest.approx(2 * EXMA_ACCELERATOR_LEAKAGE_W)

    def test_total_energy(self):
        ledger = EnergyLedger()
        ledger.record("dma_ctrl", 1000)
        assert ledger.total_energy_j(1.0) > ledger.dynamic_energy_j()

    def test_negative_seconds_raise(self):
        with pytest.raises(ValueError):
            EnergyLedger().leakage_energy_j(-1.0)


class TestSystemEnergyBreakdown:
    def _breakdown(self, scale=1.0):
        return SystemEnergyBreakdown(
            dram_chip_j=50 * scale,
            dram_io_j=20 * scale,
            accelerator_dynamic_j=1 * scale,
            accelerator_leakage_j=0.5 * scale,
            cpu_j=100 * scale,
        )

    def test_total(self):
        assert self._breakdown().total_j == pytest.approx(171.5)

    def test_normalised(self):
        assert self._breakdown(0.5).normalised_to(self._breakdown().total_j) == pytest.approx(0.5)

    def test_normalised_invalid_baseline(self):
        with pytest.raises(ValueError):
            self._breakdown().normalised_to(0.0)
