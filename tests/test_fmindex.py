"""Unit tests for repro.index.fmindex (1-step FM-Index)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testing import brute_force_find
from repro.index.fmindex import (
    DEFAULT_BUCKET_WIDTH,
    FMIndex,
    Interval,
    SearchTrace,
    fm_index_size_bytes,
)


class TestInterval:
    def test_empty_when_low_equals_high(self):
        assert Interval(3, 3).empty

    def test_empty_when_low_exceeds_high(self):
        assert Interval(5, 3).empty

    def test_count(self):
        assert Interval(2, 7).count == 5

    def test_count_never_negative(self):
        assert Interval(7, 2).count == 0


class TestPaperExample:
    """The worked example of Fig. 3: G = CATAGA$, query TAG."""

    @pytest.fixture(scope="class")
    def fm(self) -> FMIndex:
        return FMIndex("CATAGA", bucket_width=4)

    def test_bwt(self, fm):
        assert fm.bwt == "AGTC$AA"

    def test_count_table(self, fm):
        assert fm.count("A") == 1
        assert fm.count("C") == 4
        assert fm.count("G") == 5
        assert fm.count("T") == 6

    def test_occ_values(self, fm):
        assert fm.occ("C", 5) == 1
        assert fm.occ("A", 7) == 3

    def test_search_tag(self, fm):
        interval = fm.backward_search("TAG")
        assert (interval.low, interval.high) == (6, 7)

    def test_locate_tag(self, fm):
        assert fm.find("TAG") == [2]

    def test_search_iterations_match_fig3e(self, fm):
        interval = fm.extend_backward(fm.full_interval(), "G")
        assert (interval.low, interval.high) == (5, 6)
        interval = fm.extend_backward(interval, "A")
        assert (interval.low, interval.high) == (2, 3)
        interval = fm.extend_backward(interval, "T")
        assert (interval.low, interval.high) == (6, 7)


class TestSearchCorrectness:
    def test_find_matches_brute_force(self, fm_index, small_reference):
        for start in range(0, 1800, 113):
            query = small_reference[start : start + 18]
            assert fm_index.find(query) == brute_force_find(small_reference, query)

    def test_occurrence_count_matches(self, fm_index, small_reference):
        for start in range(0, 1500, 97):
            query = small_reference[start : start + 12]
            assert fm_index.occurrence_count(query) == len(
                brute_force_find(small_reference, query)
            )

    def test_absent_query_empty(self, fm_index, small_reference):
        query = "ACGT" * 10
        expected = brute_force_find(small_reference, query)
        assert fm_index.find(query) == expected

    def test_single_symbol_queries(self, fm_index, small_reference):
        for symbol in "ACGT":
            assert fm_index.occurrence_count(symbol) == small_reference.count(symbol)

    def test_full_reference_query(self, tiny_reference):
        fm = FMIndex(tiny_reference)
        assert fm.find(tiny_reference) == [0]

    def test_empty_query_raises(self, fm_index):
        with pytest.raises(ValueError):
            fm_index.backward_search("")

    def test_locate_limit(self, fm_index):
        interval = fm_index.backward_search("A")
        limited = fm_index.locate(interval, limit=5)
        assert len(limited) == 5

    def test_bucket_width_does_not_change_results(self, small_reference):
        wide = FMIndex(small_reference, bucket_width=256)
        narrow = FMIndex(small_reference, bucket_width=8)
        for start in range(0, 1000, 151):
            query = small_reference[start : start + 15]
            assert wide.find(query) == narrow.find(query)

    def test_sampled_sa_locate_matches_full(self, small_reference):
        full = FMIndex(small_reference, sa_sample_rate=1)
        sampled = FMIndex(small_reference, sa_sample_rate=8)
        for start in range(0, 1200, 173):
            query = small_reference[start : start + 16]
            assert full.find(query) == sampled.find(query)

    @given(st.integers(min_value=0, max_value=1900), st.integers(min_value=4, max_value=24))
    @settings(max_examples=30, deadline=None)
    def test_reference_substrings_always_found(self, fm_index, small_reference, start, length):
        query = small_reference[start : start + length]
        if len(query) < 4:
            return
        positions = fm_index.find(query)
        assert start in positions


class TestConstruction:
    def test_invalid_bucket_width(self):
        with pytest.raises(ValueError):
            FMIndex("ACGT", bucket_width=0)

    def test_invalid_sample_rate(self):
        with pytest.raises(ValueError):
            FMIndex("ACGT", sa_sample_rate=0)

    def test_empty_reference(self):
        with pytest.raises(ValueError):
            FMIndex("")

    def test_reference_length_includes_sentinel(self, fm_index, small_reference):
        assert fm_index.reference_length == len(small_reference) + 1

    def test_bucket_count(self, small_reference):
        fm = FMIndex(small_reference, bucket_width=64)
        assert fm.bucket_count == (len(small_reference) + 1 + 63) // 64


class TestSearchTrace:
    def test_trace_counts_two_lookups_per_iteration(self, fm_index):
        trace = SearchTrace()
        fm_index.backward_search("ACGTACGTAC", trace)
        assert trace.access_count <= 2 * trace.iterations
        assert trace.iterations <= 10

    def test_trace_records_bucket_indices(self, fm_index):
        trace = SearchTrace()
        fm_index.backward_search("ACGT", trace)
        assert all(0 <= b <= fm_index.bucket_count for b in trace.bucket_accesses)

    def test_trace_empty_initially(self):
        trace = SearchTrace()
        assert trace.access_count == 0 and trace.iterations == 0


class TestSeeding:
    def test_error_free_read_yields_full_length_seed(self, fm_index, small_reference):
        read = small_reference[400:460]
        seeds = fm_index.maximal_exact_matches(read, min_length=20)
        assert seeds
        assert max(seed.length for seed in seeds) >= 40

    def test_seeds_do_not_overlap(self, fm_index, small_reference):
        read = small_reference[100:200]
        seeds = fm_index.maximal_exact_matches(read, min_length=10)
        for first, second in zip(seeds, seeds[1:]):
            assert first.read_end <= second.read_start

    def test_seed_substrings_occur_in_reference(self, fm_index, small_reference):
        read = small_reference[700:780]
        for seed in fm_index.maximal_exact_matches(read, min_length=12):
            fragment = read[seed.read_start : seed.read_end]
            assert fm_index.occurrence_count(fragment) == seed.interval.count
            assert seed.interval.count >= 1

    def test_mismatched_read_splits_into_seeds(self, fm_index, small_reference):
        read = list(small_reference[900:980])
        read[40] = "A" if read[40] != "A" else "C"
        seeds = fm_index.maximal_exact_matches("".join(read), min_length=10)
        assert len(seeds) >= 2

    def test_garbage_read_produces_no_long_seeds(self, fm_index):
        seeds = fm_index.maximal_exact_matches("ACGT" * 25, min_length=60)
        assert all(seed.length < 60 for seed in seeds) or not seeds


class TestSizeModels:
    def test_storage_bytes_positive(self, fm_index):
        assert fm_index.storage_bytes() > 0

    def test_analytic_size_monotone_in_genome_length(self):
        assert fm_index_size_bytes(10**9) < fm_index_size_bytes(3 * 10**9)

    def test_analytic_size_uses_default_bucket_width(self):
        assert fm_index_size_bytes(10**6, DEFAULT_BUCKET_WIDTH) == fm_index_size_bytes(10**6)
