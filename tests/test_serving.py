"""Serving-layer suite: admission, batching, fairness, backpressure, and
the served-equals-offline equivalence contract.

The load-bearing test is :class:`TestOfflineEquivalence`: for a given
partitioning of the served queries into dynamic batches, the service's
flush replays must be **field-for-field identical** to
:meth:`repro.accel.exma_accelerator.ExmaAccelerator.run_windowed` over the
same per-batch request streams, and every returned interval identical to
:meth:`repro.engine.engine.QueryEngine.search_batch` — serving is a
different *arrival* of the same computation, never a different result.
"""

from __future__ import annotations

import math
import time

import pytest

from repro.accel.exma_accelerator import ExmaAccelerator
from repro.engine.backends import ExmaBackend
from repro.engine.engine import QueryEngine
from repro.exma.table import ExmaTable
from repro.genome.sequence import random_genome
from repro.serving import (
    AdmissionRejected,
    QueryService,
    ServingConfig,
    ServingStats,
    TenantQueues,
    Ticket,
    bursty_schedule,
    make_schedule,
    percentile,
    poisson_schedule,
    run_open_loop,
    sample_query_pool,
    zipfian_picks,
)
from repro.serving.service import _Pending
from repro.testing import random_queries

#: Generous join/result timeout: everything here is toy-scale.
TIMEOUT = 60.0


@pytest.fixture(scope="module")
def serving_stack():
    reference = random_genome(1800, seed=11)
    table = ExmaTable(reference, k=4)
    backend = ExmaBackend(table=table)
    accelerator = ExmaAccelerator(table, None)
    return reference, backend, accelerator


def _pending(query: str, tenant: str, arrival: float = 0.0) -> _Pending:
    return _Pending(query, tenant, Ticket(1), 0, arrival)


# --------------------------------------------------------------------- #
# Admission queue and fairness
# --------------------------------------------------------------------- #


class TestTenantQueues:
    def test_round_robin_interleaves_tenants(self):
        queues = TenantQueues(capacity=64)
        queues.admit([_pending(f"a{i}", "a") for i in range(5)])
        queues.admit([_pending(f"b{i}", "b") for i in range(2)])
        batch = queues.take(6)
        order = [(p.tenant, p.query) for p in batch]
        # One query per tenant per turn until b drains, then a alone;
        # within each tenant strictly FIFO.
        assert order == [
            ("a", "a0"), ("b", "b0"), ("a", "a1"), ("b", "b1"), ("a", "a2"), ("a", "a3"),
        ]
        assert queues.queued == 1

    def test_round_robin_resumes_after_last_served_tenant(self):
        queues = TenantQueues(capacity=64)
        queues.admit([_pending(f"a{i}", "a") for i in range(4)])
        queues.admit([_pending(f"b{i}", "b") for i in range(4)])
        first = queues.take(3)
        second = queues.take(3)
        # The second batch starts with the tenant after the last served,
        # so across batches both tenants get equal slots.
        tenants = [p.tenant for p in first + second]
        assert tenants.count("a") == tenants.count("b") == 3

    def test_flooding_tenant_cannot_starve_others(self):
        queues = TenantQueues(capacity=256)
        queues.admit([_pending(f"flood{i}", "flood") for i in range(100)])
        queues.admit([_pending("fair0", "fair")])
        batch = queues.take(8)
        assert "fair" in {p.tenant for p in batch}

    def test_capacity_accounting(self):
        queues = TenantQueues(capacity=4)
        assert queues.has_room(4)
        queues.admit([_pending(f"q{i}", "t") for i in range(4)])
        assert not queues.has_room(1)
        queues.take(2)
        assert queues.has_room(2) and not queues.has_room(3)

    def test_oldest_arrival_spans_tenants(self):
        queues = TenantQueues(capacity=8)
        queues.admit([_pending("late", "a", arrival=5.0)])
        queues.admit([_pending("early", "b", arrival=1.0)])
        assert queues.oldest_arrival() == 1.0
        assert queues.take(8)  # drain
        assert queues.oldest_arrival() is None

    def test_drained_tenants_are_evicted(self):
        """Regression: the ring must stay O(active tenants), not O(all
        tenants ever seen) — an always-on service facing one-shot tenants
        previously leaked a queue entry per tenant forever."""
        queues = TenantQueues(capacity=100_000)
        for index in range(1000):
            queues.admit([_pending("q", f"one-shot-{index}")])
        assert queues.active == 1000
        taken = queues.take(500)
        assert len(taken) == 500
        # The 500 drained tenants are fully evicted, not just emptied.
        assert queues.active == 500
        assert len(queues._queues) == 500
        assert len(queues._ring) == 500
        queues.take(500)
        assert queues.active == 0
        assert queues._queues == {} and not queues._ring
        assert queues.oldest_arrival() is None

    def test_evicted_tenant_readmits_at_ring_tail(self):
        """Eviction must not buy extra turns: a tenant that drains and
        comes back re-enters behind the tenants already waiting."""
        queues = TenantQueues(capacity=64)
        queues.admit([_pending("a0", "a"), _pending("a1", "a")])
        queues.admit([_pending("b0", "b")])
        assert [(p.tenant, p.query) for p in queues.take(2)] == [("a", "a0"), ("b", "b0")]
        assert queues.tenants == ["a"]  # b drained => evicted
        queues.admit([_pending("b1", "b")])
        assert queues.tenants == ["a", "b"]
        assert [(p.tenant, p.query) for p in queues.take(2)] == [("a", "a1"), ("b", "b1")]


# --------------------------------------------------------------------- #
# Backpressure
# --------------------------------------------------------------------- #


class TestBackpressure:
    def test_full_queue_rejects_with_retry_after(self, serving_stack):
        _, backend, _ = serving_stack
        service = QueryService(
            QueryEngine(backend), config=ServingConfig(queue_capacity=8, max_batch=4)
        )
        # Not started: nothing drains, so the bound is exact.
        service.submit(["ACGT"] * 8)
        with pytest.raises(AdmissionRejected) as excinfo:
            service.submit(["ACGT"])
        rejection = excinfo.value
        assert rejection.retry_after > 0
        assert rejection.queued == 8 and rejection.capacity == 8
        # Drain estimate: 8 queued / 4 per batch = 2 admission windows.
        assert rejection.retry_after == pytest.approx(2 * service.config.max_delay)
        assert service.stats.rejected == 1
        service.stop(drain=False)

    def test_oversized_group_rejected_before_any_enqueue(self, serving_stack):
        _, backend, _ = serving_stack
        service = QueryService(
            QueryEngine(backend), config=ServingConfig(queue_capacity=4)
        )
        with pytest.raises(AdmissionRejected):
            service.submit(["ACGT"] * 5)
        assert service.stats.accepted == 0
        service.stop(drain=False)

    def test_submit_after_stop_raises(self, serving_stack):
        _, backend, _ = serving_stack
        service = QueryService(QueryEngine(backend))
        service.stop()
        with pytest.raises(RuntimeError):
            service.submit(["ACGT"])

    def test_empty_submit_after_stop_raises(self, serving_stack):
        """Regression: an empty group used to short-circuit *before* the
        stopped check and hand back an already-resolved ticket — accepted
        work from a dead service.  Both paths must raise."""
        _, backend, _ = serving_stack
        service = QueryService(QueryEngine(backend))
        service.stop()
        with pytest.raises(RuntimeError):
            service.submit([])
        with pytest.raises(RuntimeError):
            service.submit(["ACGT"])

    def test_retry_after_reflects_observed_service_time(self, serving_stack):
        """Regression: retry_after used to charge only the admission
        window per backlog batch, so whenever real batch service time
        exceeded max_delay — exactly the overload that causes bounces —
        clients were told to come back into a still-full queue."""
        _, backend, _ = serving_stack
        service = QueryService(
            QueryEngine(backend),
            config=ServingConfig(queue_capacity=8, max_batch=4, max_delay=0.005),
        )
        service.submit(["ACGT"] * 8)
        service._observe_service_time(0.5)
        assert service.service_time_ewma == pytest.approx(0.5)
        with pytest.raises(AdmissionRejected) as excinfo:
            service.submit(["ACGT"])
        # 2 backlog batches at the observed 0.5 s pace, not the 5 ms window.
        assert excinfo.value.retry_after == pytest.approx(2 * 0.5)
        service.stop(drain=False)

    def test_service_time_ewma_smooths(self, serving_stack):
        _, backend, _ = serving_stack
        service = QueryService(QueryEngine(backend))
        assert service.service_time_ewma is None
        service._observe_service_time(0.5)
        service._observe_service_time(0.1)
        # alpha = 0.2: 0.5 + 0.2 * (0.1 - 0.5)
        assert service.service_time_ewma == pytest.approx(0.42)
        service.stop(drain=False)


# --------------------------------------------------------------------- #
# The admission window
# --------------------------------------------------------------------- #


class TestAdmissionWindow:
    def test_idle_timeout_with_no_queued_queries(self, serving_stack):
        """An admission window expiring on an empty queue is a no-op tick:
        no batch, no flush, the service stays healthy."""
        _, backend, accelerator = serving_stack
        service = QueryService(
            QueryEngine(backend),
            accelerator,
            ServingConfig(idle_timeout=0.01),
        )
        assert service._next_batch() == []
        assert service.stats.idle_timeouts == 1
        assert service.stats.batches == 0 and service.stats.flushes == 0
        # The service still serves afterwards.
        with service:
            ticket = service.submit(["ACGTACGT"])
            service.stop()
        assert ticket.done()

    def test_stopping_idle_loop_returns_none(self, serving_stack):
        _, backend, _ = serving_stack
        service = QueryService(QueryEngine(backend))
        service._stopping = True
        assert service._next_batch() is None

    def test_max_delay_bounds_batch_wait(self, serving_stack):
        """A lone query must not wait for max_batch company forever."""
        _, backend, accelerator = serving_stack
        config = ServingConfig(max_batch=1024, max_delay=0.02, window=1)
        with QueryService(QueryEngine(backend), accelerator, config) as service:
            start = time.monotonic()
            outcome = service.submit(["ACGTACGT"]).result(timeout=TIMEOUT)[0]
            elapsed = time.monotonic() - start
        assert outcome.latency >= 0
        # Window (20 ms) + search + replay; generous bound for slow CI.
        assert elapsed < 10.0
        assert service.stats.batches == 1

    def test_idle_tick_flushes_partial_window(self, serving_stack):
        """Liveness: a batch stuck in a half-full coalescing window is
        flushed by the next idle tick — completions never wait on future
        traffic (no stop() needed)."""
        reference, backend, accelerator = serving_stack
        config = ServingConfig(
            max_batch=4, max_delay=0.005, window=8, idle_timeout=0.02
        )
        with QueryService(QueryEngine(backend), accelerator, config) as service:
            ticket = service.submit(random_queries(reference, count=4, length=16, seed=21))
            outcomes = ticket.result(timeout=TIMEOUT)  # resolves pre-stop
            assert service.stats.flushes == 1
        assert {outcome.flush_index for outcome in outcomes} == {0}

    def test_full_batch_closes_window_early(self, serving_stack):
        """max_batch queries queued => the batch forms without waiting out
        the (here: very long) admission window."""
        _, backend, accelerator = serving_stack
        config = ServingConfig(max_batch=6, max_delay=30.0, window=1)
        with QueryService(QueryEngine(backend), accelerator, config) as service:
            ticket = service.submit(["ACGTAC"] * 6)
            outcomes = ticket.result(timeout=TIMEOUT)
        assert len(outcomes) == 6
        assert {outcome.batch_index for outcome in outcomes} == {0}


# --------------------------------------------------------------------- #
# Served results == offline results
# --------------------------------------------------------------------- #


class TestOfflineEquivalence:
    @pytest.mark.parametrize("window,groups", [(1, 3), (2, 4), (2, 3), (4, 2)])
    def test_flushes_identical_to_run_windowed(self, serving_stack, window, groups):
        """Deterministic batching (every submit exactly max_batch queries,
        huge max_delay) makes served batches == submitted groups; the
        flush replays must then equal run_windowed over the same streams
        field-for-field — including the trailing partial window forced
        out by stop(drain=True)."""
        reference, backend, accelerator = serving_stack
        batch = 8
        query_groups = [
            random_queries(reference, count=batch, length=16, seed=100 + index)
            for index in range(groups)
        ]
        config = ServingConfig(
            max_batch=batch, max_delay=30.0, window=window, idle_timeout=30.0
        )
        service = QueryService(QueryEngine(backend), accelerator, config)
        with service:
            tickets = [service.submit(group) for group in query_groups]
            service.stop()
        outcomes = [ticket.result(timeout=TIMEOUT) for ticket in tickets]

        offline_engine = QueryEngine(backend)
        streams = [
            offline_engine.search_batch(group).stats.requests for group in query_groups
        ]
        offline = accelerator.run_windowed(
            iter(streams), window=window, name=config.name
        )

        served = service.result()
        assert served.flushes == offline.flushes
        assert served.issued == offline.issued
        assert served.batches == offline.batches
        assert served.capacity == window
        for group, group_outcomes in zip(query_groups, outcomes):
            assert [
                outcome.interval for outcome in group_outcomes
            ] == offline_engine.search_batch(group).intervals

    def test_search_only_service_matches_engine(self, serving_stack):
        reference, backend, _ = serving_stack
        queries = random_queries(reference, count=10, length=14, seed=5)
        with QueryService(QueryEngine(backend)) as service:
            outcomes = service.submit(queries).result(timeout=TIMEOUT)
        assert [outcome.interval for outcome in outcomes] == QueryEngine(
            backend
        ).search_batch(queries).intervals
        assert all(outcome.flush_index == -1 for outcome in outcomes)


# --------------------------------------------------------------------- #
# Lifecycle
# --------------------------------------------------------------------- #


class TestLifecycle:
    def test_stop_drains_partial_window(self, serving_stack):
        reference, backend, accelerator = serving_stack
        config = ServingConfig(max_batch=4, max_delay=30.0, window=8)
        service = QueryService(QueryEngine(backend), accelerator, config)
        with service:
            ticket = service.submit(random_queries(reference, count=4, length=16, seed=9))
            service.stop()
        assert ticket.done()
        assert service.stats.flushes == 1  # the forced partial flush
        assert service.result().capacity == 8

    def test_stop_without_drain_cancels_queue(self, serving_stack):
        """stop(drain=False) resolves still-queued tickets immediately with
        structured cancelled outcomes — no waiter ever strands into
        TimeoutError."""
        _, backend, _ = serving_stack
        service = QueryService(
            QueryEngine(backend), config=ServingConfig(queue_capacity=16)
        )
        ticket = service.submit(["ACGT"] * 3)
        service.stop(drain=False)
        assert ticket.done()
        outcomes = ticket.result(timeout=0.01)
        assert len(outcomes) == 3
        for outcome in outcomes:
            assert outcome.status == "cancelled"
            assert not outcome.ok
            assert outcome.interval is None
            assert "QueryCancelled" in outcome.error
        assert service.stats.cancelled == 3
        assert service.stats.completed == 0

    def test_never_started_service_drains_on_stop(self, serving_stack):
        """stop(drain=True) completes admitted work even if the batcher
        thread never ran."""
        reference, backend, accelerator = serving_stack
        service = QueryService(
            QueryEngine(backend), accelerator, ServingConfig(window=2)
        )
        ticket = service.submit(random_queries(reference, count=5, length=16, seed=3))
        service.stop()
        assert ticket.done()
        assert service.stats.flushes == 1

    def test_empty_submit_resolves_immediately(self, serving_stack):
        _, backend, _ = serving_stack
        service = QueryService(QueryEngine(backend))
        ticket = service.submit([])
        assert ticket.done() and ticket.result(timeout=0) == []
        service.stop()

    def test_per_tenant_completion_counts(self, serving_stack):
        reference, backend, accelerator = serving_stack
        with QueryService(QueryEngine(backend), accelerator) as service:
            tickets = [
                service.submit(random_queries(reference, 3, 14, seed=index), tenant=tenant)
                for index, tenant in enumerate(("alice", "bob"))
            ]
            service.stop()
        for ticket in tickets:
            ticket.result(timeout=TIMEOUT)
        assert service.stats.per_tenant == {"alice": 3, "bob": 3}


# --------------------------------------------------------------------- #
# Bounded stats (regression: unbounded per-query growth)
# --------------------------------------------------------------------- #


class TestBoundedStats:
    def test_latencies_bounded_to_retention(self):
        """Regression: ``latencies`` grew one float per completed query
        forever.  At the bound the record is a trailing window."""
        stats = ServingStats(retention=4)
        for value in range(1, 11):
            stats.latencies.append(float(value))
        assert list(stats.latencies) == [7.0, 8.0, 9.0, 10.0]
        # Percentiles over the retained trailing window.
        assert stats.latency_percentile(50) == 8.0
        assert stats.latency_percentile(100) == 10.0

    def test_percentiles_exact_under_retention(self):
        stats = ServingStats(retention=10)
        for value in range(1, 11):
            stats.latencies.append(float(value))
        # At-or-under the bound nothing is truncated: exact nearest-rank.
        assert stats.latency_percentile(50) == 5.0
        assert stats.latency_percentile(90) == 9.0
        assert stats.latency_percentile(100) == 10.0

    def test_bare_stats_stay_unbounded(self):
        stats = ServingStats()
        assert stats.latencies.maxlen is None

    def test_service_bounds_latencies_and_flushes(self, serving_stack):
        """Counters keep the lifetime totals; the per-item records keep
        only the most recent ``stats_retention`` entries."""
        reference, backend, accelerator = serving_stack
        config = ServingConfig(
            max_batch=1, max_delay=30.0, window=1, stats_retention=3
        )
        service = QueryService(QueryEngine(backend), accelerator, config)
        queries = random_queries(reference, count=5, length=14, seed=41)
        tickets = [service.submit([query]) for query in queries]
        service.stop()  # never started: drains inline, 5 batches, 5 flushes
        for ticket in tickets:
            ticket.result(timeout=TIMEOUT)
        assert service.stats.completed == 5
        assert service.stats.flushes == 5
        assert len(service.stats.latencies) == 3
        assert len(service.result().flushes) == 3
        assert service.stats.latencies.maxlen == 3


# --------------------------------------------------------------------- #
# Saturation: driving the service past its admission bound
# --------------------------------------------------------------------- #


class TestSaturation:
    def test_overload_rejects_then_accepted_work_drains(self, serving_stack):
        """Deterministic saturation: with the batcher not running, offered
        load past ``queue_capacity`` must be rejected with finite positive
        retry_after hints, and every *accepted* ticket must still resolve
        once the service drains."""
        reference, backend, accelerator = serving_stack
        ticks = [0.0]
        config = ServingConfig(queue_capacity=12, max_batch=4, window=2)
        service = QueryService(
            QueryEngine(backend), accelerator, config, clock=lambda: ticks[0]
        )
        queries = random_queries(reference, count=4, length=14, seed=77)
        accepted, rejections = [], []
        for index in range(8):
            ticks[0] = index * 0.001
            try:
                accepted.append(service.submit(queries, tenant=f"t{index % 3}"))
            except AdmissionRejected as rejection:
                rejections.append(rejection)
        # 12 capacity / groups of 4: exactly 3 groups fit, 5 bounce.
        assert len(accepted) == 3 and len(rejections) == 5
        assert service.stats.rejected == 4 * len(rejections)
        for rejection in rejections:
            assert math.isfinite(rejection.retry_after) and rejection.retry_after > 0
            assert rejection.queued == 12 and rejection.capacity == 12

        # retry_after coherence: once a real batch pace is observed, the
        # hint must cover the backlog at that pace spread over the workers.
        service._observe_service_time(0.25)
        with pytest.raises(AdmissionRejected) as excinfo:
            service.submit(queries)
        backlog_batches = math.ceil(12 / config.max_batch)
        floor = math.ceil(backlog_batches / config.workers) * 0.25
        assert excinfo.value.retry_after >= floor - 1e-9

        service.stop()  # drain inline
        for ticket in accepted:
            outcomes = ticket.result(timeout=TIMEOUT)
            assert all(outcome.interval is not None for outcome in outcomes)
        assert service.stats.completed == 4 * len(accepted)


# --------------------------------------------------------------------- #
# The worker pool
# --------------------------------------------------------------------- #


class TestWorkerPool:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(workers=0)
        with pytest.raises(ValueError):
            ServingConfig(stats_retention=0)

    def test_engine_clone_shares_backend(self, serving_stack):
        reference, backend, _ = serving_stack
        engine = QueryEngine(backend)
        clone = engine.clone()
        assert clone is not engine and clone.backend is engine.backend
        queries = random_queries(reference, count=6, length=14, seed=13)
        assert clone.search_batch(queries).intervals == engine.search_batch(queries).intervals

    def test_service_spawns_one_worker_per_config(self, serving_stack):
        _, backend, accelerator = serving_stack
        service = QueryService(
            QueryEngine(backend), accelerator, ServingConfig(workers=3)
        )
        workers = service.workers
        assert [worker.index for worker in workers] == [0, 1, 2]
        # Worker 0 keeps the caller's engine; the rest get clones over the
        # same shared backend, each with a private coalescing window.
        assert workers[0].engine is service.engine
        assert all(worker.engine.backend is backend for worker in workers)
        assert len({id(worker.window) for worker in workers}) == 3
        service.stop(drain=False)

    def test_multi_worker_serves_and_stays_fair(self, serving_stack):
        reference, backend, accelerator = serving_stack
        config = ServingConfig(max_batch=4, max_delay=0.002, window=2, workers=2)
        with QueryService(QueryEngine(backend), accelerator, config) as service:
            tickets = [
                service.submit(random_queries(reference, 6, 14, seed=index), tenant=tenant)
                for index, tenant in enumerate(("alice", "bob", "carol"))
            ]
            service.stop()
        outcomes = [ticket.result(timeout=TIMEOUT) for ticket in tickets]
        assert service.stats.per_tenant == {"alice": 6, "bob": 6, "carol": 6}
        assert {
            outcome.worker_index for group in outcomes for outcome in group
        } <= {0, 1}

    @pytest.mark.parametrize("workers", [2, 3])
    def test_worker_partitions_match_run_windowed(self, serving_stack, workers):
        """The PR 6 equivalence pin, extended per worker partition: each
        worker's flush sequence must equal the offline ``run_windowed``
        over the batch streams that worker happened to take, whatever the
        nondeterministic batch-to-worker assignment was."""
        reference, backend, accelerator = serving_stack
        batch, groups = 6, 6
        query_groups = [
            random_queries(reference, count=batch, length=16, seed=200 + index)
            for index in range(groups)
        ]
        config = ServingConfig(
            max_batch=batch, max_delay=30.0, window=2, idle_timeout=30.0,
            workers=workers,
        )
        service = QueryService(QueryEngine(backend), accelerator, config)
        with service:
            tickets = [service.submit(group) for group in query_groups]
            service.stop()
        outcomes = [ticket.result(timeout=TIMEOUT) for ticket in tickets]

        # Single tenant + exactly-max_batch groups: dynamic batch g is
        # group g, and one worker serves all of it.
        partition: dict[int, list[int]] = {}
        for group_index, group_outcomes in enumerate(outcomes):
            assert {outcome.batch_index for outcome in group_outcomes} == {group_index}
            owners = {outcome.worker_index for outcome in group_outcomes}
            assert len(owners) == 1
            partition.setdefault(owners.pop(), []).append(group_index)
        assert sorted(
            index for taken in partition.values() for index in taken
        ) == list(range(groups))

        offline_engine = QueryEngine(backend)
        streams = [
            offline_engine.search_batch(group).stats.requests for group in query_groups
        ]
        served = service.worker_results()
        assert len(served) == workers
        for worker_index in range(workers):
            taken = partition.get(worker_index, [])
            # batch_index is stamped at take time, so ascending order is
            # the order this worker took (and flushed) its batches.
            assert taken == sorted(taken)
            offline = accelerator.run_windowed(
                iter(streams[index] for index in taken),
                window=config.window,
                name=config.name,
            )
            assert served[worker_index].flushes == offline.flushes
            assert served[worker_index].issued == offline.issued
            assert served[worker_index].batches == offline.batches

        # And the intervals are still exactly the engine's.
        for group, group_outcomes in zip(query_groups, outcomes):
            assert [
                outcome.interval for outcome in group_outcomes
            ] == offline_engine.search_batch(group).intervals

    def test_multi_worker_open_loop_completes_everything(self, serving_stack):
        reference, backend, accelerator = serving_stack
        pool = sample_query_pool(reference, pool_size=32, length=14, seed=0)
        schedule = make_schedule(
            poisson_schedule(rate=300.0, duration=0.2, seed=2),
            pool,
            tenants=3,
            queries_per_arrival=2,
            seed=2,
        )
        config = ServingConfig(max_delay=0.005, window=2, workers=2)
        service = QueryService(QueryEngine(backend), accelerator, config)
        with service:
            result = run_open_loop(service, schedule, result_timeout=TIMEOUT)
        assert result.accepted > 0
        assert service.stats.completed == result.accepted
        p99 = service.stats.latency_percentile(99)
        assert math.isfinite(p99) and p99 > 0


# --------------------------------------------------------------------- #
# Load generation
# --------------------------------------------------------------------- #


class TestLoadGen:
    def test_poisson_schedule_shape(self):
        offsets = poisson_schedule(rate=200.0, duration=1.0, seed=0)
        assert offsets == sorted(offsets)
        assert all(0 <= offset < 1.0 for offset in offsets)
        # Poisson(200): overwhelmingly within +-50% of the mean count.
        assert 100 <= len(offsets) <= 300
        assert offsets == poisson_schedule(rate=200.0, duration=1.0, seed=0)

    def test_bursty_schedule_concentrates_in_on_windows(self):
        offsets = bursty_schedule(
            rate=200.0, duration=1.0, seed=0, period=0.2, on_fraction=0.25
        )
        assert offsets == sorted(offsets)
        assert all(0 <= offset < 1.0 for offset in offsets)
        # Every arrival lands inside the first quarter of its period.
        assert all((offset % 0.2) <= 0.05 + 1e-9 for offset in offsets)

    def test_zipfian_picks_are_skewed(self):
        picks = zipfian_picks(5000, pool_size=64, s=1.2, seed=0)
        assert picks.min() >= 0 and picks.max() < 64
        top_share = (picks == 0).sum() / picks.size
        assert top_share > 1.5 / 64  # clearly above the uniform share

    def test_make_schedule_round_robins_tenants(self):
        pool = ["AAAA", "CCCC", "GGGG"]
        schedule = make_schedule(
            [0.0, 0.1, 0.2, 0.3], pool, tenants=2, queries_per_arrival=2, seed=0
        )
        assert [arrival.tenant for arrival in schedule] == [
            "tenant-0", "tenant-1", "tenant-0", "tenant-1",
        ]
        assert all(len(arrival.queries) == 2 for arrival in schedule)
        assert all(query in pool for arrival in schedule for query in arrival.queries)

    def test_open_loop_end_to_end(self, serving_stack):
        """A real open-loop run at toy scale: everything accepted must
        complete with finite latencies; offered == accepted + rejected."""
        reference, backend, accelerator = serving_stack
        pool = sample_query_pool(reference, pool_size=32, length=14, seed=0)
        schedule = make_schedule(
            poisson_schedule(rate=300.0, duration=0.2, seed=1),
            pool,
            tenants=2,
            queries_per_arrival=2,
            seed=1,
        )
        service = QueryService(
            QueryEngine(backend), accelerator, ServingConfig(max_delay=0.005, window=2)
        )
        with service:
            result = run_open_loop(service, schedule, result_timeout=TIMEOUT)
        assert result.offered == result.accepted + result.rejected
        assert result.accepted > 0
        assert service.stats.completed == result.accepted
        p99 = service.stats.latency_percentile(99)
        assert math.isfinite(p99) and p99 > 0

    def test_rate_ladder(self):
        from repro.serving import rate_ladder

        assert rate_ladder(100.0, [1, 4, 2]) == [100.0, 200.0, 400.0]
        with pytest.raises(ValueError):
            rate_ladder(0.0, [1])
        with pytest.raises(ValueError):
            rate_ladder(100.0, [])
        with pytest.raises(ValueError):
            rate_ladder(100.0, [1, -2])

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 0) == 1.0
        assert math.isnan(percentile([], 99))
        with pytest.raises(ValueError):
            percentile(values, 101)
