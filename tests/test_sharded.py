"""Property-based equivalence suite for the sharded parallel engine.

The strong-scaling contract: for *any* query set, any shard count and
either executor, :class:`ShardedQueryEngine` must return byte-identical
intervals and a :class:`BatchStats` identical field-for-field to the
serial ``QueryEngine.search_batch`` — including the coalescing-dependent
counters (unique requests, base reads, increment-entry reads, prediction
errors) and the exact post-merge request stream the accelerator model
replays.  Hypothesis drives the cheap backends with arbitrary query
sets; a seeded-random matrix covers all six backends on both executors.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    BatchStats,
    ExmaBackend,
    FMIndexBackend,
    LisaBackend,
    QueryEngine,
    ShardedQueryEngine,
    create_backend,
    merge_shard_stats,
    run_sharded_batch,
    split_shards,
)
from repro.engine.coalesce import BatchTrace
from repro.exma.mtl_index import MTLIndex
from repro.exma.table import ExmaTable
from repro.genome.sequence import random_genome
from repro.testing import reference_and_queries

SHARD_COUNTS = (1, 2, 4, 7)
EXECUTORS = ("thread", "process")

STATS_FIELDS = (
    "queries",
    "lockstep_iterations",
    "iterations",
    "occ_requests_issued",
    "occ_requests_unique",
    "base_reads",
    "increment_entries_read",
    "index_predictions",
    "binary_comparisons",
)


def assert_stats_identical(serial: BatchStats, sharded: BatchStats) -> None:
    """Field-for-field equality, including streams and error lists."""
    for field in STATS_FIELDS:
        assert getattr(sharded, field) == getattr(serial, field), field
    assert sharded.prediction_errors == serial.prediction_errors
    assert sharded.requests == serial.requests


def assert_equivalent(backend, queries, shards, executor) -> None:
    serial = QueryEngine(backend, shards=1).search_batch(queries)
    sharded = ShardedQueryEngine(backend, shards=shards, executor=executor).search_batch(
        queries
    )
    assert [(i.low, i.high) for i in sharded.intervals] == [
        (i.low, i.high) for i in serial.intervals
    ]
    assert_stats_identical(serial.stats, sharded.stats)


# --------------------------------------------------------------------- #
# Hypothesis properties (cheap backends, arbitrary query sets)
# --------------------------------------------------------------------- #

REFERENCE = random_genome(500, seed=11)
FM_BACKEND = FMIndexBackend(REFERENCE)
EXMA_BACKEND = ExmaBackend(table=ExmaTable(REFERENCE, k=3))

#: Mixed query pool: reference substrings (hits, odd lengths included)
#: plus arbitrary strings (misses); hypothesis draws arbitrary subsets.
query_strategy = st.one_of(
    st.tuples(
        st.integers(min_value=0, max_value=len(REFERENCE) - 13),
        st.integers(min_value=1, max_value=12),
    ).map(lambda t: REFERENCE[t[0] : t[0] + t[1]]),
    st.text(alphabet="ACGT", min_size=1, max_size=14),
)
queries_strategy = st.lists(query_strategy, min_size=1, max_size=24)


class TestShardedProperties:
    @given(queries=queries_strategy, shards=st.integers(min_value=1, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_fmindex_sharded_equals_serial(self, queries, shards):
        assert_equivalent(FM_BACKEND, queries, shards, "thread")

    @given(queries=queries_strategy, shards=st.integers(min_value=1, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_exma_sharded_equals_serial(self, queries, shards):
        assert_equivalent(EXMA_BACKEND, queries, shards, "thread")

    @given(queries=queries_strategy, shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_split_is_a_contiguous_balanced_partition(self, queries, shards):
        chunks = split_shards(queries, shards)
        assert [q for chunk in chunks for q in chunk] == queries
        assert all(chunks)
        assert len(chunks) == min(shards, len(queries))
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1


# --------------------------------------------------------------------- #
# Seeded-random matrix: all six backends x shard counts x executors
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def case():
    reference, queries = reference_and_queries(
        genome_length=700, count=30, length=17, seed=5
    )
    # Odd lengths exercise every backend's partial-chunk tail path.
    queries += [reference[5:18], reference[40:51], "ACGT", "T"]
    return reference, queries


@pytest.fixture(scope="module")
def backends(case):
    reference, _ = case
    table = ExmaTable(reference, k=4)
    mtl = MTLIndex(table, model_threshold=8, samples_per_kmer=32, epochs=40, seed=0)
    return {
        "fmindex": FMIndexBackend(reference),
        "exma": ExmaBackend(table=table),
        "exma-learned": create_backend("exma-learned", reference, k=4, model_threshold=8),
        "exma-mtl": ExmaBackend(table=table, index=mtl),
        "lisa": LisaBackend(reference, k=3),
        "lisa-learned": create_backend("lisa-learned", reference, k=3),
    }


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize(
    "name", ["fmindex", "exma", "exma-learned", "exma-mtl", "lisa", "lisa-learned"]
)
def test_all_backends_all_shards_both_executors(backends, case, name, shards, executor):
    if executor == "process" and shards == 7:
        pytest.skip("process pool spun up once per (backend, shards); 4 covers it")
    _, queries = case
    assert_equivalent(backends[name], queries, shards, executor)


@pytest.mark.slow
@pytest.mark.parametrize(
    "name", ["fmindex", "exma", "exma-learned", "exma-mtl", "lisa", "lisa-learned"]
)
def test_process_executor_odd_shard_count(backends, case, name):
    """The skipped (process, 7) cell of the quick matrix, run in the slow lane."""
    _, queries = case
    assert_equivalent(backends[name], queries, 7, "process")


# --------------------------------------------------------------------- #
# BatchStats shard-merge semantics (the fig18 base-count regression)
# --------------------------------------------------------------------- #


class TestShardMergeSemantics:
    def test_base_count_accounting_survives_shard_merge(self, case, backends):
        """Regression guard: PR 1 fixed fig18 understating base counts; a
        naive per-shard ``BatchStats.merge`` would now *overstate* the
        coalescing-dependent counters instead.  The shard merge must keep
        base/increment accounting exactly serial."""
        _, queries = case
        backend = backends["exma"]
        serial = QueryEngine(backend, shards=1).search_batch(queries).stats
        sharded = run_sharded_batch(backend, queries, shards=4, executor="thread").stats
        assert serial.base_reads > 0
        assert sharded.base_reads == serial.base_reads
        assert sharded.increment_entries_read == serial.increment_entries_read
        # The legacy conversion the figure harnesses consume must agree too.
        assert sharded.to_search_stats().occ_lookups == serial.to_search_stats().occ_lookups
        assert sharded.to_search_stats().base_reads == serial.to_search_stats().base_reads

    def test_naive_merge_would_overstate_unique_requests(self, case, backends):
        """Documents why the trace-based merge exists: summing per-shard
        stats double-counts requests duplicated across shards."""
        _, queries = case
        backend = backends["exma"]
        serial = QueryEngine(backend, shards=1).search_batch(queries).stats
        naive = BatchStats()
        engine = ShardedQueryEngine(backend, shards=4, executor="thread")
        for result in engine.search_batch_per_shard(queries):
            naive.merge(result.stats)
        assert naive.occ_requests_issued == serial.occ_requests_issued
        assert naive.occ_requests_unique >= serial.occ_requests_unique
        exact = merge_shard_stats(
            backend, [r.stats for r in engine.search_batch_per_shard(queries)]
        )
        assert exact.occ_requests_unique == serial.occ_requests_unique

    def test_merge_shard_stats_of_single_shard_is_identity(self, case, backends):
        _, queries = case
        backend = backends["fmindex"]
        stats = BatchStats(trace=BatchTrace())
        backend.search_batch(queries, stats)
        merged = merge_shard_stats(backend, [stats])
        serial = QueryEngine(backend, shards=1).search_batch(queries).stats
        assert_stats_identical(serial, merged)


# --------------------------------------------------------------------- #
# Engine dispatch and configuration
# --------------------------------------------------------------------- #


class TestEngineDispatch:
    def test_env_toggle_shards_every_engine(self, case, monkeypatch):
        reference, queries = case
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "4")
        engine = QueryEngine(FMIndexBackend(reference))
        assert engine.shards == 4
        serial = QueryEngine(FMIndexBackend(reference), shards=1).search_batch(queries)
        toggled = engine.search_batch(queries)
        assert [(i.low, i.high) for i in toggled.intervals] == [
            (i.low, i.high) for i in serial.intervals
        ]
        assert_stats_identical(serial.stats, toggled.stats)

    def test_pinned_shards_override_env(self, case, monkeypatch):
        reference, _ = case
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "4")
        assert QueryEngine(FMIndexBackend(reference), shards=1).shards == 1

    def test_invalid_configuration_rejected(self, case):
        reference, _ = case
        backend = FMIndexBackend(reference)
        with pytest.raises(ValueError):
            ShardedQueryEngine(backend, shards=0)
        with pytest.raises(ValueError):
            ShardedQueryEngine(backend, shards=2, executor="rocket")
        with pytest.raises(ValueError):
            QueryEngine(backend, shards=0)
        # Executor typos must fail at construction, not at the first batch.
        with pytest.raises(ValueError):
            QueryEngine(backend, shards=4, executor="processes")

    def test_single_query_and_empty_batches(self, case):
        reference, _ = case
        engine = ShardedQueryEngine(FMIndexBackend(reference), shards=4, executor="thread")
        assert engine.search_batch([]).intervals == []
        single = engine.search_batch([reference[10:20]])
        assert single.intervals[0].count >= 1

    def test_more_shards_than_queries(self, case):
        reference, queries = case
        engine = ShardedQueryEngine(
            FMIndexBackend(reference), shards=64, executor="thread"
        )
        serial = QueryEngine(FMIndexBackend(reference), shards=1).search_batch(queries[:3])
        wide = engine.search_batch(queries[:3])
        assert [(i.low, i.high) for i in wide.intervals] == [
            (i.low, i.high) for i in serial.intervals
        ]
        assert_stats_identical(serial.stats, wide.stats)

    def test_find_batch_and_wrappers_route_through_sharded_path(self, case):
        reference, queries = case
        backend = FMIndexBackend(reference)
        serial_positions, serial_stats = QueryEngine(backend, shards=1).find_batch(queries)
        engine = ShardedQueryEngine(backend, shards=3, executor="thread")
        positions, stats = engine.find_batch(queries)
        assert positions == serial_positions
        assert_stats_identical(serial_stats, stats)
        assert engine.count_batch(queries) == QueryEngine(backend, shards=1).count_batch(
            queries
        )
        requests, _ = engine.request_stream(queries)
        assert requests == serial_stats.requests
