"""Property-based equivalence suite for the sharded parallel engine.

The strong-scaling contract: for *any* query set, any shard count and
either executor, :class:`ShardedQueryEngine` must return byte-identical
intervals and a :class:`BatchStats` identical field-for-field to the
serial ``QueryEngine.search_batch`` — including the coalescing-dependent
counters (unique requests, base reads, increment-entry reads, prediction
errors) and the exact post-merge request stream the accelerator model
replays.  Hypothesis drives the cheap backends with arbitrary query
sets; a seeded-random matrix covers all six backends on both executors.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    BatchStats,
    ExmaBackend,
    FMIndexBackend,
    LisaBackend,
    QueryEngine,
    SearchBackend,
    ShardedQueryEngine,
    create_backend,
    merge_shard_stats,
    run_sharded_batch,
    split_shards,
)
from repro.engine.coalesce import BatchTrace
from repro.exma.mtl_index import MTLIndex
from repro.exma.table import ExmaTable
from repro.genome.sequence import random_genome
from repro.testing import reference_and_queries

SHARD_COUNTS = (1, 2, 4, 7)
EXECUTORS = ("thread", "process")

STATS_FIELDS = (
    "queries",
    "lockstep_iterations",
    "iterations",
    "occ_requests_issued",
    "occ_requests_unique",
    "base_reads",
    "increment_entries_read",
    "index_predictions",
    "binary_comparisons",
)


def assert_stats_identical(serial: BatchStats, sharded: BatchStats) -> None:
    """Field-for-field equality, including streams and error lists."""
    for field in STATS_FIELDS:
        assert getattr(sharded, field) == getattr(serial, field), field
    assert sharded.prediction_errors == serial.prediction_errors
    assert sharded.requests == serial.requests


def assert_equivalent(backend, queries, shards, executor) -> None:
    serial = QueryEngine(backend, shards=1).search_batch(queries)
    sharded = ShardedQueryEngine(backend, shards=shards, executor=executor).search_batch(
        queries
    )
    assert [(i.low, i.high) for i in sharded.intervals] == [
        (i.low, i.high) for i in serial.intervals
    ]
    assert_stats_identical(serial.stats, sharded.stats)


# --------------------------------------------------------------------- #
# Hypothesis properties (cheap backends, arbitrary query sets)
# --------------------------------------------------------------------- #

REFERENCE = random_genome(500, seed=11)
FM_BACKEND = FMIndexBackend(REFERENCE)
EXMA_BACKEND = ExmaBackend(table=ExmaTable(REFERENCE, k=3))

#: Mixed query pool: reference substrings (hits, odd lengths included)
#: plus arbitrary strings (misses); hypothesis draws arbitrary subsets.
query_strategy = st.one_of(
    st.tuples(
        st.integers(min_value=0, max_value=len(REFERENCE) - 13),
        st.integers(min_value=1, max_value=12),
    ).map(lambda t: REFERENCE[t[0] : t[0] + t[1]]),
    st.text(alphabet="ACGT", min_size=1, max_size=14),
)
queries_strategy = st.lists(query_strategy, min_size=1, max_size=24)


class TestShardedProperties:
    @given(queries=queries_strategy, shards=st.integers(min_value=1, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_fmindex_sharded_equals_serial(self, queries, shards):
        assert_equivalent(FM_BACKEND, queries, shards, "thread")

    @given(queries=queries_strategy, shards=st.integers(min_value=1, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_exma_sharded_equals_serial(self, queries, shards):
        assert_equivalent(EXMA_BACKEND, queries, shards, "thread")

    @given(queries=queries_strategy, shards=st.integers(min_value=1, max_value=8))
    @settings(max_examples=25, deadline=None)
    def test_split_is_a_contiguous_balanced_partition(self, queries, shards):
        chunks = split_shards(queries, shards)
        assert [q for chunk in chunks for q in chunk] == queries
        assert all(chunks)
        assert len(chunks) == min(shards, len(queries))
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1


# --------------------------------------------------------------------- #
# Seeded-random matrix: all six backends x shard counts x executors
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def case():
    reference, queries = reference_and_queries(
        genome_length=700, count=30, length=17, seed=5
    )
    # Odd lengths exercise every backend's partial-chunk tail path.
    queries += [reference[5:18], reference[40:51], "ACGT", "T"]
    return reference, queries


@pytest.fixture(scope="module")
def backends(case):
    reference, _ = case
    table = ExmaTable(reference, k=4)
    mtl = MTLIndex(table, model_threshold=8, samples_per_kmer=32, epochs=40, seed=0)
    return {
        "fmindex": FMIndexBackend(reference),
        "exma": ExmaBackend(table=table),
        "exma-learned": create_backend("exma-learned", reference, k=4, model_threshold=8),
        "exma-mtl": ExmaBackend(table=table, index=mtl),
        "lisa": LisaBackend(reference, k=3),
        "lisa-learned": create_backend("lisa-learned", reference, k=3),
    }


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize(
    "name", ["fmindex", "exma", "exma-learned", "exma-mtl", "lisa", "lisa-learned"]
)
def test_all_backends_all_shards_both_executors(backends, case, name, shards, executor):
    if executor == "process" and shards == 7:
        pytest.skip("one persistent process pool per (backend, shards) cell; 4 covers it")
    _, queries = case
    assert_equivalent(backends[name], queries, shards, executor)


@pytest.mark.slow
@pytest.mark.parametrize(
    "name", ["fmindex", "exma", "exma-learned", "exma-mtl", "lisa", "lisa-learned"]
)
def test_process_executor_odd_shard_count(backends, case, name):
    """The skipped (process, 7) cell of the quick matrix, run in the slow lane."""
    _, queries = case
    assert_equivalent(backends[name], queries, 7, "process")


# --------------------------------------------------------------------- #
# BatchStats shard-merge semantics (the fig18 base-count regression)
# --------------------------------------------------------------------- #


class TestShardMergeSemantics:
    def test_base_count_accounting_survives_shard_merge(self, case, backends):
        """Regression guard: PR 1 fixed fig18 understating base counts; a
        naive per-shard ``BatchStats.merge`` would now *overstate* the
        coalescing-dependent counters instead.  The shard merge must keep
        base/increment accounting exactly serial."""
        _, queries = case
        backend = backends["exma"]
        serial = QueryEngine(backend, shards=1).search_batch(queries).stats
        sharded = run_sharded_batch(backend, queries, shards=4, executor="thread").stats
        assert serial.base_reads > 0
        assert sharded.base_reads == serial.base_reads
        assert sharded.increment_entries_read == serial.increment_entries_read
        # The legacy conversion the figure harnesses consume must agree too.
        assert sharded.to_search_stats().occ_lookups == serial.to_search_stats().occ_lookups
        assert sharded.to_search_stats().base_reads == serial.to_search_stats().base_reads

    def test_naive_merge_would_overstate_unique_requests(self, case, backends):
        """Documents why the trace-based merge exists: summing per-shard
        stats double-counts requests duplicated across shards."""
        _, queries = case
        backend = backends["exma"]
        serial = QueryEngine(backend, shards=1).search_batch(queries).stats
        naive = BatchStats()
        engine = ShardedQueryEngine(backend, shards=4, executor="thread")
        for result in engine.search_batch_per_shard(queries):
            naive.merge(result.stats)
        assert naive.occ_requests_issued == serial.occ_requests_issued
        assert naive.occ_requests_unique >= serial.occ_requests_unique
        exact = merge_shard_stats(
            backend, [r.stats for r in engine.search_batch_per_shard(queries)]
        )
        assert exact.occ_requests_unique == serial.occ_requests_unique

    def test_merge_shard_stats_of_single_shard_is_identity(self, case, backends):
        _, queries = case
        backend = backends["fmindex"]
        stats = BatchStats(trace=BatchTrace())
        backend.search_batch(queries, stats)
        merged = merge_shard_stats(backend, [stats])
        serial = QueryEngine(backend, shards=1).search_batch(queries).stats
        assert_stats_identical(serial, merged)


# --------------------------------------------------------------------- #
# Replay-free merge: no second trip through the index
# --------------------------------------------------------------------- #


class TestReplayFreeMerge:
    def test_replay_trace_is_gone(self, backends):
        """The merge records contributions during the shard run; nothing —
        base class or backend — carries a replay hook anymore."""
        assert not hasattr(SearchBackend, "replay_trace")
        for backend in backends.values():
            assert not hasattr(backend, "replay_trace")

    @pytest.mark.parametrize("name", ["exma", "exma-mtl", "lisa", "lisa-learned"])
    def test_merge_consults_backend_only_for_its_span(self, case, backends, name):
        """Merging per-shard stats must need the backend for nothing but
        ``reference_length`` — proven by merging through a stub that has
        no search structure at all."""
        from types import SimpleNamespace

        _, queries = case
        backend = backends[name]
        shard_stats = []
        for shard in split_shards(queries, 4):
            stats = BatchStats(trace=BatchTrace())
            backend.search_batch(shard, stats)
            shard_stats.append(stats)
        stub = SimpleNamespace(reference_length=backend.reference_length)
        merged = merge_shard_stats(stub, shard_stats)
        serial = QueryEngine(backend, shards=1).search_batch(queries).stats
        assert_stats_identical(serial, merged)


# --------------------------------------------------------------------- #
# Persistent worker pools
# --------------------------------------------------------------------- #


class TestPersistentPools:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_pool_survives_multiple_batches(self, case, backends, executor):
        """A reused engine keeps one pool across search_batch calls, and
        every call stays byte-identical to serial."""
        _, queries = case
        backend = backends["exma"]
        serial = QueryEngine(backend, shards=1).search_batch(queries)
        with ShardedQueryEngine(backend, shards=3, executor=executor) as engine:
            assert engine.worker_pool is None  # created lazily
            first = engine.search_batch(queries)
            pool = engine.worker_pool
            assert pool is not None and pool.active
            for result in (first, engine.search_batch(queries), engine.search_batch(queries)):
                assert [(i.low, i.high) for i in result.intervals] == [
                    (i.low, i.high) for i in serial.intervals
                ]
                assert_stats_identical(serial.stats, result.stats)
            assert engine.worker_pool is pool  # same pool, not one per batch
        assert engine.worker_pool is None  # context exit released it

    def test_close_is_idempotent_and_engine_stays_usable(self, case, backends):
        _, queries = case
        engine = ShardedQueryEngine(backends["fmindex"], shards=2, executor="thread")
        engine.search_batch(queries)
        first_pool = engine.worker_pool
        engine.close()
        engine.close()
        assert engine.worker_pool is None
        engine.search_batch(queries)  # transparently recreates the pool
        assert engine.worker_pool is not None
        assert engine.worker_pool is not first_pool
        engine.close()

    def test_pool_replaced_when_knobs_change(self, case, backends, monkeypatch):
        """The env-toggled engine swaps its pool when the effective
        executor changes between calls instead of reusing a stale one."""
        monkeypatch.setenv("REPRO_SHARD_OVERSUBSCRIBE", "1")
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "2")
        monkeypatch.setenv("REPRO_DEFAULT_EXECUTOR", "thread")
        _, queries = case
        engine = QueryEngine(backends["fmindex"])
        engine.search_batch(queries)
        thread_pool = engine.worker_pool
        assert thread_pool is not None and thread_pool.kind == "thread"
        monkeypatch.setenv("REPRO_DEFAULT_EXECUTOR", "process")
        engine.search_batch(queries)
        assert engine.worker_pool is not thread_pool
        assert engine.worker_pool.kind == "process"
        engine.close()


# --------------------------------------------------------------------- #
# Adaptive shard clamping (QueryEngine) vs forced split (ShardedQueryEngine)
# --------------------------------------------------------------------- #


class TestAdaptiveShards:
    def test_query_engine_clamps_to_available_cpus(self, case, monkeypatch):
        reference, _ = case
        monkeypatch.delenv("REPRO_SHARD_OVERSUBSCRIBE", raising=False)
        monkeypatch.setattr("repro.engine.sharded.available_parallelism", lambda: 2)
        engine = QueryEngine(FMIndexBackend(reference), shards=8)
        assert engine.shards == 8  # the configured upper bound is kept
        assert engine.effective_shards == 2

    def test_oversubscribe_toggle_disables_the_clamp(self, case, monkeypatch):
        reference, _ = case
        monkeypatch.setattr("repro.engine.sharded.available_parallelism", lambda: 1)
        monkeypatch.setenv("REPRO_SHARD_OVERSUBSCRIBE", "1")
        assert QueryEngine(FMIndexBackend(reference), shards=8).effective_shards == 8

    def test_sharded_engine_never_clamps(self, case, monkeypatch):
        reference, queries = case
        monkeypatch.delenv("REPRO_SHARD_OVERSUBSCRIBE", raising=False)
        monkeypatch.setattr("repro.engine.sharded.available_parallelism", lambda: 1)
        backend = FMIndexBackend(reference)
        engine = ShardedQueryEngine(backend, shards=4, executor="thread")
        assert engine.effective_shards == 4
        engine.search_batch(queries)
        assert engine.worker_pool is not None  # the split really ran
        engine.close()


# --------------------------------------------------------------------- #
# Engine dispatch and configuration
# --------------------------------------------------------------------- #


class TestEngineDispatch:
    def test_env_toggle_shards_every_engine(self, case, monkeypatch):
        reference, queries = case
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "4")
        # Oversubscription keeps the adaptive clamp from degenerating this
        # to the serial path on single-core CI runners.
        monkeypatch.setenv("REPRO_SHARD_OVERSUBSCRIBE", "1")
        engine = QueryEngine(FMIndexBackend(reference))
        assert engine.shards == 4
        assert engine.effective_shards == 4
        serial = QueryEngine(FMIndexBackend(reference), shards=1).search_batch(queries)
        toggled = engine.search_batch(queries)
        assert [(i.low, i.high) for i in toggled.intervals] == [
            (i.low, i.high) for i in serial.intervals
        ]
        assert_stats_identical(serial.stats, toggled.stats)

    def test_pinned_shards_override_env(self, case, monkeypatch):
        reference, _ = case
        monkeypatch.setenv("REPRO_DEFAULT_SHARDS", "4")
        assert QueryEngine(FMIndexBackend(reference), shards=1).shards == 1

    def test_invalid_configuration_rejected(self, case):
        reference, _ = case
        backend = FMIndexBackend(reference)
        with pytest.raises(ValueError):
            ShardedQueryEngine(backend, shards=0)
        with pytest.raises(ValueError):
            ShardedQueryEngine(backend, shards=2, executor="rocket")
        with pytest.raises(ValueError):
            QueryEngine(backend, shards=0)
        # Executor typos must fail at construction, not at the first batch.
        with pytest.raises(ValueError):
            QueryEngine(backend, shards=4, executor="processes")

    def test_single_query_and_empty_batches(self, case):
        reference, _ = case
        engine = ShardedQueryEngine(FMIndexBackend(reference), shards=4, executor="thread")
        assert engine.search_batch([]).intervals == []
        single = engine.search_batch([reference[10:20]])
        assert single.intervals[0].count >= 1

    def test_more_shards_than_queries(self, case):
        reference, queries = case
        engine = ShardedQueryEngine(
            FMIndexBackend(reference), shards=64, executor="thread"
        )
        serial = QueryEngine(FMIndexBackend(reference), shards=1).search_batch(queries[:3])
        wide = engine.search_batch(queries[:3])
        assert [(i.low, i.high) for i in wide.intervals] == [
            (i.low, i.high) for i in serial.intervals
        ]
        assert_stats_identical(serial.stats, wide.stats)

    def test_find_batch_and_wrappers_route_through_sharded_path(self, case):
        reference, queries = case
        backend = FMIndexBackend(reference)
        serial_positions, serial_stats = QueryEngine(backend, shards=1).find_batch(queries)
        engine = ShardedQueryEngine(backend, shards=3, executor="thread")
        positions, stats = engine.find_batch(queries)
        assert positions == serial_positions
        assert_stats_identical(serial_stats, stats)
        assert engine.count_batch(queries) == QueryEngine(backend, shards=1).count_batch(
            queries
        )
        requests, _ = engine.request_stream(queries)
        assert requests == serial_stats.requests
