"""Request-coalescing and BatchStats tests against hand-computed oracles.

The tiny-reference cases are worked out by hand: for identical queries
every lockstep iteration issues ``2 * batch`` requests that collapse to
exactly 2 unique ``(k-mer, pos)`` pairs, so all counters are known in
closed form and asserted literally.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    BatchStats,
    ExmaBackend,
    FMIndexBackend,
    RequestStream,
    coalesce_requests,
)
from repro.exma.search import ExmaSearch, OccRequest
from repro.exma.table import ExmaTable

#: 8 bp toy reference; sentinel-terminated length n = 9.
TINY = "ACGTACGT"


class TestCoalesceRequests:
    def test_duplicates_merge_exactly_once(self):
        kmers = np.array([7, 7, 3, 7, 3])
        positions = np.array([4, 4, 0, 4, 0])
        step = coalesce_requests(kmers, positions, span=10)
        assert step.issued == 5
        assert step.unique == 2
        assert step.merged == 3
        # Unique pairs come back sorted (kmer, pos)-major.
        assert step.kmers.tolist() == [3, 7]
        assert step.positions.tolist() == [0, 4]

    def test_scatter_routes_results_to_all_issuers(self):
        kmers = np.array([1, 2, 1])
        positions = np.array([5, 6, 5])
        step = coalesce_requests(kmers, positions, span=10)
        unique_values = np.array([100, 200])  # for (1,5) and (2,6)
        assert step.scatter(unique_values).tolist() == [100, 200, 100]

    def test_distinct_pairs_untouched(self):
        kmers = np.array([1, 1, 2])
        positions = np.array([0, 1, 0])
        step = coalesce_requests(kmers, positions, span=10)
        assert step.issued == step.unique == 3
        assert step.merged == 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            coalesce_requests(np.array([1]), np.array([1, 2]), span=10)


class TestExmaCoalescingOracle:
    """Three identical 'ACGT' queries over ACGTACGT, k = 2 — by hand.

    Each query splits into the chunks GT (first) then AC; both chunks
    occur twice in the reference so every query stays live for both
    steps.  Identical queries track identical intervals, so each step's
    6 issued requests collapse to 2 unique pairs:

    * step 1: (GT, 0) and (GT, 9) — the full-matrix bounds;
    * step 2: (AC, low) and (AC, high) of the shared GT interval.
    """

    @pytest.fixture(scope="class")
    def table(self) -> ExmaTable:
        return ExmaTable(TINY, k=2)

    def test_premise_chunk_frequencies(self, table):
        # Both chunks occur exactly twice — the entry counts the
        # increment-read oracle below relies on.
        assert table.frequency("GT") == 2
        assert table.frequency("AC") == 2

    def test_counters_match_hand_oracle(self, table):
        stats = BatchStats()
        backend = ExmaBackend(table=table)
        intervals = backend.search_batch(["ACGT", "ACGT", "ACGT"], stats)

        assert stats.queries == 3
        assert stats.lockstep_iterations == 2          # GT step, AC step
        assert stats.iterations == 6                   # 3 queries x 2 steps
        assert stats.occ_requests_issued == 12         # 2 per query per step
        assert stats.occ_requests_unique == 4          # 2 unique per step
        assert stats.requests_merged == 8
        assert stats.coalescing_factor == pytest.approx(3.0)
        assert stats.base_reads == 2                   # one fetch of GT, one of AC
        # Exact resolution reads ceil-log2 of the 2-entry list per unique
        # request: bit_length(2) = 2 entries x 4 unique requests.
        assert stats.increment_entries_read == 8
        assert stats.index_predictions == 0

        # All three queries agree and are correct: ACGT occurs at 0 and 4.
        positions = [backend.locate(interval) for interval in intervals]
        assert positions == [[0, 4]] * 3

    def test_coalesced_request_stream_equals_single_query_stream(self, table):
        """Duplicates merge to exactly the one-query request stream."""
        single_requests, _ = ExmaSearch(table).request_stream(["ACGT"])
        stats = BatchStats()
        ExmaBackend(table=table).search_batch(["ACGT"] * 3, stats)
        # Same pairs per step; the engine orders each step k-mer-major.
        assert stats.requests == single_requests

    def test_first_step_full_matrix_bounds(self, table):
        stats = BatchStats()
        ExmaBackend(table=table).search_batch(["ACGT", "ACGT"], stats)
        n = table.reference_length
        first_step = stats.requests[:2]
        assert first_step == [
            OccRequest(packed_kmer=11, pos=0),   # GT packs to 0b1011 = 11
            OccRequest(packed_kmer=11, pos=n),
        ]


class TestFMIndexCoalescingOracle:
    """CGT and AGT over ACGTACGT — by hand, symbol-per-step.

    Processing right to left, both queries consume T then G with
    identical intervals (same symbol from the same full matrix), so
    steps 1 and 2 each collapse 4 issued requests to 2 unique; the final
    symbols C vs A differ, so step 3 keeps all 4.
    """

    def test_counters_match_hand_oracle(self):
        stats = BatchStats()
        backend = FMIndexBackend(TINY)
        backend.search_batch(["CGT", "AGT"], stats)
        assert stats.queries == 2
        assert stats.lockstep_iterations == 3
        assert stats.occ_requests_issued == 12
        assert stats.occ_requests_unique == 2 + 2 + 4
        assert stats.requests_merged == 4

    def test_identical_queries_fully_coalesce(self):
        stats = BatchStats()
        backend = FMIndexBackend(TINY)
        batch = ["ACGT"] * 8
        intervals = backend.search_batch(batch, stats)
        assert stats.occ_requests_issued == 8 * 2 * 4
        assert stats.occ_requests_unique == 2 * 4
        assert stats.coalescing_factor == pytest.approx(8.0)
        assert all((i.low, i.high) == (intervals[0].low, intervals[0].high) for i in intervals)


class TestRequestStream:
    """The columnar request stream and its lazy OccRequest view.

    Steps are appended as packed ``kmer * span + pos`` keys (span 10
    here): (3, 0) and (7, 4) in the first step, (1, 9) in the second.
    """

    def _stream(self) -> RequestStream:
        stream = RequestStream()
        stream.append_step(np.array([3 * 10 + 0, 7 * 10 + 4]), 10)
        stream.append_step(np.array([1 * 10 + 9]), 10)
        return stream

    def test_len_and_lazy_view(self):
        stream = self._stream()
        assert len(stream) == 3
        assert list(stream) == [
            OccRequest(packed_kmer=3, pos=0),
            OccRequest(packed_kmer=7, pos=4),
            OccRequest(packed_kmer=1, pos=9),
        ]
        assert stream[1] == OccRequest(packed_kmer=7, pos=4)
        assert stream[:2] == [
            OccRequest(packed_kmer=3, pos=0),
            OccRequest(packed_kmer=7, pos=4),
        ]

    def test_view_cache_invalidated_by_growth(self):
        stream = self._stream()
        first = stream.materialize()
        assert stream.materialize() is first  # cached while unchanged
        stream.append_step(np.array([2 * 10 + 2]), 10)
        assert len(stream) == 4
        assert stream[-1] == OccRequest(packed_kmer=2, pos=2)

    def test_snapshot_decouples_from_growth(self):
        stream = self._stream()
        frozen = stream.snapshot()
        stream.append_step(np.array([2 * 10 + 2]), 10)
        assert len(frozen) == 3
        assert len(stream) == 4
        assert frozen == self._stream()

    def test_equality_against_streams_and_lists(self):
        stream = self._stream()
        assert stream == self._stream()
        assert stream == list(stream)
        other = self._stream()
        other.append_step(np.array([9 * 10 + 9]), 10)
        assert stream != other
        assert stream != list(other)

    def test_extend_concatenates_columns(self):
        stream = self._stream()
        stream.extend(self._stream())
        assert len(stream) == 6
        assert stream.kmers.tolist() == [3, 7, 1, 3, 7, 1]
        assert stream.positions.tolist() == [0, 4, 9, 0, 4, 9]
        stream.extend([OccRequest(packed_kmer=5, pos=5)])
        assert stream[-1] == OccRequest(packed_kmer=5, pos=5)

    def test_columns_round_trip_through_engine(self):
        stats = BatchStats()
        table = ExmaTable(TINY, k=2)
        ExmaBackend(table=table).search_batch(["ACGT", "ACGT"], stats)
        stream = stats.requests
        assert isinstance(stream, RequestStream)
        assert len(stream) == stats.occ_requests_unique
        assert stream.kmers.tolist() == [r.packed_kmer for r in stream]
        assert stream.positions.tolist() == [r.pos for r in stream]


class TestBatchStats:
    def test_merge_accumulates(self):
        a, b = BatchStats(), BatchStats()
        a.queries, b.queries = 2, 3
        a.occ_requests_issued, b.occ_requests_issued = 10, 6
        a.occ_requests_unique, b.occ_requests_unique = 5, 2
        a.prediction_errors, b.prediction_errors = [1], [2, 3]
        a.requests = [OccRequest(packed_kmer=1, pos=0)]
        b.requests = [OccRequest(packed_kmer=2, pos=1)]
        a.merge(b)
        assert a.queries == 5
        assert a.occ_requests_issued == 16
        assert a.occ_requests_unique == 7
        assert a.prediction_errors == [1, 2, 3]
        assert len(a.requests) == 2

    def test_coalescing_factor_defaults_to_one(self):
        assert BatchStats().coalescing_factor == 1.0

    def test_mean_error(self):
        stats = BatchStats(prediction_errors=[2, 4])
        assert stats.mean_error == 3.0

    def test_to_search_stats_roundtrip(self):
        stats = BatchStats()
        table = ExmaTable(TINY, k=2)
        ExmaBackend(table=table).search_batch(["ACGT", "GTAC"], stats)
        legacy = stats.to_search_stats()
        assert legacy.iterations == stats.iterations
        assert legacy.occ_lookups == stats.occ_requests_unique
        assert legacy.requests == stats.requests
        assert legacy.base_reads == stats.base_reads
        assert legacy.increment_entries_read == stats.increment_entries_read
