"""Unit tests for repro.index.kstep (k-step FM-Index)."""

from __future__ import annotations

import pytest

from repro.testing import brute_force_find
from repro.genome.datasets import HUMAN_PAPER_LENGTH
from repro.index.kstep import KStepFMIndex, KStepStats, kstep_size_bytes


@pytest.fixture(scope="module")
def kstep(small_reference) -> KStepFMIndex:
    return KStepFMIndex(small_reference, k=3)


class TestKStepSearch:
    def test_matches_one_step_intervals(self, kstep, fm_index, small_reference):
        for start in range(0, 1500, 127):
            query = small_reference[start : start + 12]
            a = kstep.backward_search(query)
            b = fm_index.backward_search(query)
            assert (a.low, a.high) == (b.low, b.high)

    def test_find_matches_brute_force(self, kstep, small_reference):
        for start in range(0, 1400, 191):
            query = small_reference[start : start + 9]
            assert kstep.find(query) == brute_force_find(small_reference, query)

    def test_partial_chunk_queries(self, kstep, fm_index, small_reference):
        for length in (4, 5, 7, 8, 10, 11):
            query = small_reference[50 : 50 + length]
            assert kstep.occurrence_count(query) == fm_index.occurrence_count(query)

    def test_absent_query(self, kstep, small_reference):
        query = "ACGTACGTACGT"
        assert kstep.occurrence_count(query) == len(brute_force_find(small_reference, query))

    def test_empty_query_raises(self, kstep):
        with pytest.raises(ValueError):
            kstep.backward_search("")

    def test_wrong_kmer_length_raises(self, kstep):
        with pytest.raises(ValueError):
            kstep.extend_backward(kstep.full_interval(), "AC")

    def test_stats_count_iterations(self, kstep, small_reference):
        stats = KStepStats()
        kstep.backward_search(small_reference[10:19], stats)
        assert stats.iterations == 3
        assert stats.occ_lookups >= 4

    def test_iterations_for_query(self, kstep):
        assert kstep.iterations_for_query(9) == 3
        assert kstep.iterations_for_query(10) == 4
        assert kstep.iterations_for_query(2) == 1

    def test_k_property(self, kstep):
        assert kstep.k == 3

    def test_invalid_k_raises(self, small_reference):
        with pytest.raises(ValueError):
            KStepFMIndex(small_reference, k=0)

    def test_empty_reference_raises(self):
        with pytest.raises(ValueError):
            KStepFMIndex("", k=2)


class TestKStepSizeModel:
    def test_paper_fm5_size_about_100gb_with_d128(self):
        size_gb = kstep_size_bytes(HUMAN_PAPER_LENGTH, 5, bucket_width=128) / 1024**3
        assert 80 < size_gb < 120

    def test_paper_fm6_size_about_374gb_with_d128(self):
        size_gb = kstep_size_bytes(HUMAN_PAPER_LENGTH, 6, bucket_width=128) / 1024**3
        assert 330 < size_gb < 420

    def test_exponential_growth(self):
        sizes = [kstep_size_bytes(HUMAN_PAPER_LENGTH, k) for k in range(1, 7)]
        ratios = [b / a for a, b in zip(sizes, sizes[1:])]
        assert all(r > 2.0 for r in ratios[2:])

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            kstep_size_bytes(0, 2)
        with pytest.raises(ValueError):
            kstep_size_bytes(100, 0)
        with pytest.raises(ValueError):
            kstep_size_bytes(100, 2, bucket_width=0)
