"""Unit tests for repro.genome.datasets (paper dataset stand-ins)."""

from __future__ import annotations

import pytest

from repro.genome.datasets import (
    DATASETS,
    HUMAN,
    HUMAN_PAPER_LENGTH,
    PICEA,
    PINUS,
    build_all_datasets,
    build_dataset,
)


class TestDatasetProfiles:
    def test_three_paper_datasets(self):
        assert set(DATASETS) == {"human", "picea", "pinus"}

    def test_paper_lengths(self):
        assert HUMAN.paper_length == 3_000_000_000
        assert PICEA.paper_length == 20_000_000_000
        assert PINUS.paper_length == 31_000_000_000

    def test_conifers_more_repetitive_than_human(self):
        assert PICEA.repeat_profile.repeat_fraction > HUMAN.repeat_profile.repeat_fraction
        assert PINUS.repeat_profile.repeat_fraction > PICEA.repeat_profile.repeat_fraction


class TestBuildDataset:
    def test_build_returns_requested_length(self):
        ref = build_dataset("human", simulated_length=5000, seed=0)
        assert len(ref) == 5000

    def test_paper_length_carried(self):
        ref = build_dataset("human", simulated_length=5000, seed=0)
        assert ref.paper_length == HUMAN_PAPER_LENGTH

    def test_scale_factor(self):
        ref = build_dataset("human", simulated_length=3000, seed=0)
        assert ref.scale_factor == pytest.approx(1_000_000)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            build_dataset("ecoli")

    def test_deterministic(self):
        a = build_dataset("pinus", simulated_length=2000, seed=3)
        b = build_dataset("pinus", simulated_length=2000, seed=3)
        assert a.sequence == b.sequence

    def test_datasets_differ(self):
        human = build_dataset("human", simulated_length=3000, seed=1)
        pinus = build_dataset("pinus", simulated_length=3000, seed=1)
        assert human.sequence != pinus.sequence

    def test_build_all(self):
        refs = build_all_datasets(simulated_length=2000, seed=0)
        assert set(refs) == {"human", "picea", "pinus"}
        assert all(len(ref) == 2000 for ref in refs.values())
