"""Epoch-parallel replay equivalence suite.

Every ``run_stream`` flush is an independent scheduling epoch — the
scheduler, caches and DRAM state start fresh per flush (the PR 4
contract) — so fanning epochs across a worker pool is pure reassembly:
:class:`repro.accel.parallel.ParallelReplay` must produce a
:class:`~repro.accel.exma_accelerator.WindowedRunResult` that is
**field-for-field identical** (dataclass equality over every counter,
cache/DRAM stat and energy ledger) to the serial loop, for the request
streams of all six engine backends, at every worker count, on both pool
kinds.  Anything less and the parallel path is not allowed to exist.
"""

from __future__ import annotations

import pytest

from repro.accel import ExmaAccelerator, ExmaAcceleratorConfig, ParallelReplay
from repro.engine import CoalescingWindow, QueryEngine, create_backend
from repro.engine.backends import ExmaBackend, FMIndexBackend, LisaBackend
from repro.exma.mtl_index import MTLIndex
from repro.exma.table import ExmaTable
from repro.lisa.search import LisaIndex
from repro.serving import QueryService, ServingConfig
from repro.testing import random_queries, reference_and_queries

BACKEND_NAMES = ("fmindex", "exma", "exma-learned", "exma-mtl", "lisa", "lisa-learned")

#: Worker counts the sweep pins (1 is the serial reference itself).
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def workload():
    reference, _ = reference_and_queries(genome_length=900, seed=3)
    batches = [
        random_queries(reference, count=10, length=18, seed=20 + i) for i in range(4)
    ]
    return reference, batches


@pytest.fixture(scope="module")
def backends(workload):
    reference, _ = workload
    table = ExmaTable(reference, k=4)
    mtl = MTLIndex(table, model_threshold=8, samples_per_kmer=32, epochs=30, seed=0)
    return {
        "fmindex": FMIndexBackend(reference),
        "exma": ExmaBackend(table=table),
        "exma-learned": create_backend("exma-learned", reference, k=4, model_threshold=8),
        "exma-mtl": ExmaBackend(table=table, index=mtl),
        "lisa": LisaBackend(reference, k=3),
        "lisa-learned": LisaBackend(
            lisa_index=LisaIndex(reference, k=3, use_learned_index=True)
        ),
    }


@pytest.fixture(scope="module")
def accelerator(workload):
    reference, _ = workload
    table = ExmaTable(reference, k=4)
    config = ExmaAcceleratorConfig().with_overrides(
        base_cache_bytes=2048, index_cache_bytes=1024, cam_entries=32
    )
    accelerator = ExmaAccelerator(table, None, config)
    yield accelerator
    accelerator.close()


@pytest.fixture(scope="module")
def streams(workload, backends):
    """Per-backend: the columnar request stream of every consecutive batch."""
    _, batches = workload
    per_backend = {}
    for name, backend in backends.items():
        engine = QueryEngine(backend)
        per_backend[name] = [engine.request_stream(queries)[0] for queries in batches]
    return per_backend


@pytest.fixture(scope="module")
def serial_results(streams, accelerator):
    """The serial anchors every parallel run must reproduce exactly."""
    return {
        name: accelerator.run_windowed(batch_streams, window=2)
        for name, batch_streams in streams.items()
    }


# --------------------------------------------------------------------- #
# The equivalence contract
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("name", BACKEND_NAMES)
class TestParallelEqualsSerial:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_thread_pool_field_for_field(
        self, name, workers, streams, accelerator, serial_results
    ):
        result = accelerator.run_windowed(
            streams[name], window=2, replay_workers=workers, executor="thread"
        )
        assert result == serial_results[name]

    def test_process_pool_field_for_field(
        self, name, streams, accelerator, serial_results
    ):
        """The process pool ships the accelerator once via the pool
        initializer; every epoch result must survive the pickle round
        trip unchanged."""
        result = accelerator.run_windowed(
            streams[name], window=2, replay_workers=2, executor="process"
        )
        assert result == serial_results[name]


class TestPlainRequestSequences:
    """run_stream also accepts raw request sequences (not windowed
    batches): the parallel path must keep the same batches/issued
    accounting — one batch and len(requests) issued per epoch."""

    def test_request_lists_parallel_equals_serial(self, streams, accelerator):
        epochs = [list(stream.materialize()) for stream in streams["exma"]]
        serial = accelerator.run_stream(iter(epochs))
        parallel = accelerator.run_stream(iter(epochs), replay_workers=2)
        assert parallel == serial
        assert parallel.batches == len(epochs)
        assert parallel.issued == sum(len(epoch) for epoch in epochs)


class TestParallelReplayDriver:
    def test_replay_flush_matches_accelerator(self, streams, accelerator):
        flushes = list(CoalescingWindow(2).stream(streams["exma"]))
        with ParallelReplay(accelerator, workers=2, executor="thread") as replay:
            for flushed in flushes:
                assert replay.replay_flush(flushed) == accelerator.replay_flush(flushed)

    def test_workers_validated(self, accelerator):
        with pytest.raises(ValueError):
            ParallelReplay(accelerator, workers=0)
        with pytest.raises(ValueError):
            ParallelReplay(accelerator, workers=2, executor="greenlet")

    def test_close_is_idempotent(self, accelerator):
        replay = ParallelReplay(accelerator, workers=2)
        replay.close()
        replay.close()


class TestPoolLifecycle:
    def test_pool_reused_swapped_and_closed(self, streams, accelerator):
        """Same knobs reuse the owned driver; changed knobs swap it;
        close() releases it — and every configuration stays exact."""
        serial = accelerator.run_windowed(streams["fmindex"], window=2)

        first = accelerator.run_windowed(streams["fmindex"], window=2, replay_workers=2)
        driver = accelerator.replay
        assert driver is not None and driver.workers == 2

        second = accelerator.run_windowed(streams["fmindex"], window=2, replay_workers=2)
        assert accelerator.replay is driver  # reused, not rebuilt

        third = accelerator.run_windowed(streams["fmindex"], window=2, replay_workers=4)
        assert accelerator.replay is not driver  # swapped on knob change
        assert accelerator.replay.workers == 4

        accelerator.close()
        assert accelerator.replay is None
        assert first == serial and second == serial and third == serial

    def test_serial_run_leaves_no_pool(self, streams, accelerator):
        accelerator.close()
        accelerator.run_windowed(streams["fmindex"], window=2, replay_workers=1)
        assert accelerator.replay is None


class TestKnobResolution:
    def test_explicit_workers_win_verbatim(self, accelerator):
        """An explicit count is honoured even on a single-core host (the
        forced-shard split's contract): no hardware clamp applies."""
        assert accelerator._resolve_replay_workers(4) == 4

    def test_invalid_explicit_workers(self, accelerator):
        with pytest.raises(ValueError):
            accelerator._resolve_replay_workers(0)

    def test_env_default_picked_up(self, monkeypatch, streams, accelerator):
        """REPRO_DEFAULT_REPLAY_WORKERS re-points the default path at the
        pool (oversubscribe lifts the single-core clamp), and the result
        still equals serial."""
        monkeypatch.setenv("REPRO_DEFAULT_REPLAY_WORKERS", "2")
        monkeypatch.setenv("REPRO_SHARD_OVERSUBSCRIBE", "1")
        serial = accelerator.run_windowed(streams["exma"], window=2, replay_workers=1)
        result = accelerator.run_windowed(streams["exma"], window=2)
        assert accelerator.replay is not None and accelerator.replay.workers == 2
        assert result == serial
        accelerator.close()

    def test_env_default_clamped_without_oversubscribe(
        self, monkeypatch, streams, accelerator
    ):
        """Without the oversubscribe toggle the env default degrades to
        the host's parallelism — serial replay on a single-core box, and
        never a pool bigger than the machine."""
        from repro.engine.sharded import available_parallelism

        monkeypatch.setenv("REPRO_DEFAULT_REPLAY_WORKERS", "64")
        monkeypatch.delenv("REPRO_SHARD_OVERSUBSCRIBE", raising=False)
        accelerator.close()
        accelerator.run_windowed(streams["exma"], window=2)
        driver = accelerator.replay
        if available_parallelism() == 1:
            assert driver is None
        else:
            assert driver is not None
            assert driver.workers <= available_parallelism()
        accelerator.close()


# --------------------------------------------------------------------- #
# Serving integration
# --------------------------------------------------------------------- #


class TestServingReplayWorkers:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(replay_workers=0)
        with pytest.raises(ValueError):
            ServingConfig(replay_executor="greenlet")

    def test_service_shares_one_parallel_replay(self, workload):
        """A replay_workers=2 service serves the same intervals as the
        plain engine and funnels every batcher's flush through one shared
        ParallelReplay over the pool."""
        reference, batches = workload
        table = ExmaTable(reference, k=4)
        engine = QueryEngine(ExmaBackend(table=table))
        accelerator = ExmaAccelerator(table, None)
        config = ServingConfig(
            max_batch=16, max_delay=0.005, window=2, workers=2, replay_workers=2
        )
        queries = [query for batch in batches for query in batch]
        expected = engine.search_batch(queries)
        with QueryService(engine, accelerator, config) as service:
            assert service.replay is not None
            assert service.replay.workers == 2
            tickets = [service.submit([query]) for query in queries]
            service.stop()
            intervals = [
                outcome.interval
                for ticket in tickets
                for outcome in ticket.result(timeout=60.0)
            ]
        assert intervals == expected.intervals
        assert service.stats.flushes >= 1

    def test_search_only_service_has_no_replay(self, workload):
        reference, _ = workload
        engine = QueryEngine(ExmaBackend(table=ExmaTable(reference, k=4)))
        with QueryService(engine, None, ServingConfig(replay_workers=2)) as service:
            assert service.replay is None
            service.stop()
