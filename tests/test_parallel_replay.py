"""Epoch-parallel replay equivalence suite.

Every ``run_stream`` flush is an independent scheduling epoch — the
scheduler, caches and DRAM state start fresh per flush (the PR 4
contract) — so fanning epochs across a worker pool is pure reassembly:
:class:`repro.accel.parallel.ParallelReplay` must produce a
:class:`~repro.accel.exma_accelerator.WindowedRunResult` that is
**field-for-field identical** (dataclass equality over every counter,
cache/DRAM stat and energy ledger) to the serial loop, for the request
streams of all six engine backends, at every worker count, on both pool
kinds.  Anything less and the parallel path is not allowed to exist.
"""

from __future__ import annotations

import pytest

from repro.accel import ExmaAccelerator, ExmaAcceleratorConfig, ParallelReplay
from repro.engine import CoalescingWindow, QueryEngine, create_backend
from repro.engine.backends import ExmaBackend, FMIndexBackend, LisaBackend
from repro.exma.mtl_index import MTLIndex
from repro.exma.table import ExmaTable
from repro.lisa.search import LisaIndex
from repro.serving import QueryService, ServingConfig
from repro.testing import random_queries, reference_and_queries

BACKEND_NAMES = ("fmindex", "exma", "exma-learned", "exma-mtl", "lisa", "lisa-learned")

#: Worker counts the sweep pins (1 is the serial reference itself).
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def workload():
    reference, _ = reference_and_queries(genome_length=900, seed=3)
    batches = [
        random_queries(reference, count=10, length=18, seed=20 + i) for i in range(4)
    ]
    return reference, batches


@pytest.fixture(scope="module")
def backends(workload):
    reference, _ = workload
    table = ExmaTable(reference, k=4)
    mtl = MTLIndex(table, model_threshold=8, samples_per_kmer=32, epochs=30, seed=0)
    return {
        "fmindex": FMIndexBackend(reference),
        "exma": ExmaBackend(table=table),
        "exma-learned": create_backend("exma-learned", reference, k=4, model_threshold=8),
        "exma-mtl": ExmaBackend(table=table, index=mtl),
        "lisa": LisaBackend(reference, k=3),
        "lisa-learned": LisaBackend(
            lisa_index=LisaIndex(reference, k=3, use_learned_index=True)
        ),
    }


@pytest.fixture(scope="module")
def accelerator(workload):
    reference, _ = workload
    table = ExmaTable(reference, k=4)
    config = ExmaAcceleratorConfig().with_overrides(
        base_cache_bytes=2048, index_cache_bytes=1024, cam_entries=32
    )
    accelerator = ExmaAccelerator(table, None, config)
    yield accelerator
    accelerator.close()


@pytest.fixture(scope="module")
def streams(workload, backends):
    """Per-backend: the columnar request stream of every consecutive batch."""
    _, batches = workload
    per_backend = {}
    for name, backend in backends.items():
        engine = QueryEngine(backend)
        per_backend[name] = [engine.request_stream(queries)[0] for queries in batches]
    return per_backend


@pytest.fixture(scope="module")
def serial_results(streams, accelerator):
    """The serial anchors every parallel run must reproduce exactly."""
    return {
        name: accelerator.run_windowed(batch_streams, window=2)
        for name, batch_streams in streams.items()
    }


# --------------------------------------------------------------------- #
# The equivalence contract
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("name", BACKEND_NAMES)
class TestParallelEqualsSerial:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_thread_pool_field_for_field(
        self, name, workers, streams, accelerator, serial_results
    ):
        result = accelerator.run_windowed(
            streams[name], window=2, replay_workers=workers, executor="thread"
        )
        assert result == serial_results[name]

    def test_process_pool_field_for_field(
        self, name, streams, accelerator, serial_results
    ):
        """The process pool ships the accelerator once via the pool
        initializer; every epoch result must survive the pickle round
        trip unchanged."""
        result = accelerator.run_windowed(
            streams[name], window=2, replay_workers=2, executor="process"
        )
        assert result == serial_results[name]


class TestPlainRequestSequences:
    """run_stream also accepts raw request sequences (not windowed
    batches): the parallel path must keep the same batches/issued
    accounting — one batch and len(requests) issued per epoch."""

    def test_request_lists_parallel_equals_serial(self, streams, accelerator):
        epochs = [list(stream.materialize()) for stream in streams["exma"]]
        serial = accelerator.run_stream(iter(epochs))
        parallel = accelerator.run_stream(iter(epochs), replay_workers=2)
        assert parallel == serial
        assert parallel.batches == len(epochs)
        assert parallel.issued == sum(len(epoch) for epoch in epochs)


class TestParallelReplayDriver:
    def test_replay_flush_matches_accelerator(self, streams, accelerator):
        flushes = list(CoalescingWindow(2).stream(streams["exma"]))
        with ParallelReplay(accelerator, workers=2, executor="thread") as replay:
            for flushed in flushes:
                assert replay.replay_flush(flushed) == accelerator.replay_flush(flushed)

    def test_workers_validated(self, accelerator):
        with pytest.raises(ValueError):
            ParallelReplay(accelerator, workers=0)
        with pytest.raises(ValueError):
            ParallelReplay(accelerator, workers=2, executor="greenlet")

    def test_close_is_idempotent(self, accelerator):
        replay = ParallelReplay(accelerator, workers=2)
        replay.close()
        replay.close()


class TestPoolLifecycle:
    def test_pool_reused_swapped_and_closed(self, streams, accelerator):
        """Same knobs reuse the owned driver; changed knobs swap it;
        close() releases it — and every configuration stays exact."""
        serial = accelerator.run_windowed(streams["fmindex"], window=2)

        first = accelerator.run_windowed(streams["fmindex"], window=2, replay_workers=2)
        driver = accelerator.replay
        assert driver is not None and driver.workers == 2

        second = accelerator.run_windowed(streams["fmindex"], window=2, replay_workers=2)
        assert accelerator.replay is driver  # reused, not rebuilt

        third = accelerator.run_windowed(streams["fmindex"], window=2, replay_workers=4)
        assert accelerator.replay is not driver  # swapped on knob change
        assert accelerator.replay.workers == 4

        accelerator.close()
        assert accelerator.replay is None
        assert first == serial and second == serial and third == serial

    def test_serial_run_leaves_no_pool(self, streams, accelerator):
        accelerator.close()
        accelerator.run_windowed(streams["fmindex"], window=2, replay_workers=1)
        assert accelerator.replay is None


class TestKnobResolution:
    def test_explicit_workers_win_verbatim(self, accelerator):
        """An explicit count is honoured even on a single-core host (the
        forced-shard split's contract): no hardware clamp applies."""
        assert accelerator._resolve_replay_workers(4) == 4

    def test_invalid_explicit_workers(self, accelerator):
        with pytest.raises(ValueError):
            accelerator._resolve_replay_workers(0)

    def test_env_default_picked_up(self, monkeypatch, streams, accelerator):
        """REPRO_DEFAULT_REPLAY_WORKERS re-points the default path at the
        pool (oversubscribe lifts the single-core clamp), and the result
        still equals serial."""
        monkeypatch.setenv("REPRO_DEFAULT_REPLAY_WORKERS", "2")
        monkeypatch.setenv("REPRO_SHARD_OVERSUBSCRIBE", "1")
        serial = accelerator.run_windowed(streams["exma"], window=2, replay_workers=1)
        result = accelerator.run_windowed(streams["exma"], window=2)
        assert accelerator.replay is not None and accelerator.replay.workers == 2
        assert result == serial
        accelerator.close()

    def test_env_default_clamped_without_oversubscribe(
        self, monkeypatch, streams, accelerator
    ):
        """Without the oversubscribe toggle the env default degrades to
        the host's parallelism — serial replay on a single-core box, and
        never a pool bigger than the machine."""
        from repro.engine.sharded import available_parallelism

        monkeypatch.setenv("REPRO_DEFAULT_REPLAY_WORKERS", "64")
        monkeypatch.delenv("REPRO_SHARD_OVERSUBSCRIBE", raising=False)
        accelerator.close()
        accelerator.run_windowed(streams["exma"], window=2)
        driver = accelerator.replay
        if available_parallelism() == 1:
            assert driver is None
        else:
            assert driver is not None
            assert driver.workers <= available_parallelism()
        accelerator.close()


# --------------------------------------------------------------------- #
# Pool failure: rebuild once, then degrade to serial (exactly)
# --------------------------------------------------------------------- #


class TestPoolDegradation:
    """A broken or wedged pool must never change results: the ladder is
    rebuild-once then warn-once serial fallback, each rung field-for-field
    identical to the serial replay."""

    def _flushes(self, streams):
        return list(CoalescingWindow(2).stream(streams["exma"]))

    def test_process_worker_kill_rebuilds_pool_exactly(self, streams, accelerator):
        from repro.faults import SITE_SUBMIT, FaultInjector, FaultPlan, FaultSpec

        flushes = self._flushes(streams)
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(site=SITE_SUBMIT, kind="kill", at=(0,)),))
        )
        with ParallelReplay(
            accelerator, workers=2, executor="process", faults=injector
        ) as replay:
            for flushed in flushes:
                assert replay.replay_flush(flushed) == accelerator.replay_flush(flushed)
            assert not replay.degraded  # one failure: rebuilt, not degraded
        assert injector.total_injected == 1

    def test_repeated_kills_never_change_results(self, streams, accelerator):
        """A kill on *every* flush submission: whether each broken pool is
        observed at submit time or at gather time (a scheduling race), the
        ladder absorbs it — every result stays exact and nothing escapes.
        The warn-once on the second observed failure is tolerated, not
        required (the deterministic rebuild->degrade sequence is pinned by
        the wedged-pool timeout test below)."""
        import warnings as _warnings

        from repro.faults import SITE_SUBMIT, FaultInjector, FaultPlan, FaultSpec

        flushes = self._flushes(streams)
        assert len(flushes) >= 2
        injector = FaultInjector(
            FaultPlan(
                specs=(
                    FaultSpec(
                        site=SITE_SUBMIT, kind="kill", at=tuple(range(len(flushes)))
                    ),
                )
            )
        )
        with ParallelReplay(
            accelerator, workers=2, executor="process", faults=injector
        ) as replay:
            with _warnings.catch_warnings():
                _warnings.simplefilter("ignore", RuntimeWarning)
                results = [replay.replay_flush(flushed) for flushed in flushes]
        assert injector.total_injected == len(flushes)
        assert results == [accelerator.replay_flush(flushed) for flushed in flushes]

    def test_thread_kill_degrades_on_submitting_side(self, streams, accelerator):
        """A thread pool has no separate process to take down: the kill
        surfaces as an InjectedFault on the submitting side instead of
        silently succeeding."""
        from repro.faults import SITE_SUBMIT, FaultInjector, FaultPlan, FaultSpec, InjectedFault

        flushes = self._flushes(streams)
        injector = FaultInjector(
            FaultPlan(specs=(FaultSpec(site=SITE_SUBMIT, kind="kill", at=(0,)),))
        )
        with ParallelReplay(
            accelerator, workers=2, executor="thread", faults=injector
        ) as replay:
            with pytest.raises(InjectedFault):
                replay.replay_flush(flushes[0])
            # Later flushes are untouched (the fault was a task error, not
            # a pool failure).
            assert replay.replay_flush(flushes[1]) == accelerator.replay_flush(flushes[1])

    def test_wedged_pool_times_out_into_serial_fallback(
        self, streams, accelerator, monkeypatch
    ):
        """A replay that outlives the gather deadline trips the whole
        ladder — timeout, rebuild, timeout, degrade — and the inline
        fallback still returns the exact serial result."""
        import time as _time

        import repro.accel.parallel as parallel_module

        flushes = self._flushes(streams)
        real_epoch = parallel_module.replay_epoch

        def wedged_epoch(accel, name, flushed):
            _time.sleep(0.2)
            return real_epoch(accel, name, flushed)

        monkeypatch.setattr(parallel_module, "replay_epoch", wedged_epoch)
        with ParallelReplay(
            accelerator, workers=2, executor="thread", timeout=0.01
        ) as replay:
            with pytest.warns(RuntimeWarning, match="failed twice"):
                result = replay.replay_flush(flushes[0])
            assert replay.degraded
            assert result == accelerator.replay_flush(flushes[0])

    def test_timeout_validated(self, accelerator):
        with pytest.raises(ValueError):
            ParallelReplay(accelerator, workers=2, timeout=0.0)
        with pytest.raises(ValueError):
            ParallelReplay(accelerator, workers=2, timeout=-1.0)


# --------------------------------------------------------------------- #
# Serving integration
# --------------------------------------------------------------------- #


class TestServingReplayWorkers:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(replay_workers=0)
        with pytest.raises(ValueError):
            ServingConfig(replay_executor="greenlet")

    def test_service_shares_one_parallel_replay(self, workload):
        """A replay_workers=2 service serves the same intervals as the
        plain engine and funnels every batcher's flush through one shared
        ParallelReplay over the pool."""
        reference, batches = workload
        table = ExmaTable(reference, k=4)
        engine = QueryEngine(ExmaBackend(table=table))
        accelerator = ExmaAccelerator(table, None)
        config = ServingConfig(
            max_batch=16, max_delay=0.005, window=2, workers=2, replay_workers=2
        )
        queries = [query for batch in batches for query in batch]
        expected = engine.search_batch(queries)
        with QueryService(engine, accelerator, config) as service:
            assert service.replay is not None
            assert service.replay.workers == 2
            tickets = [service.submit([query]) for query in queries]
            service.stop()
            intervals = [
                outcome.interval
                for ticket in tickets
                for outcome in ticket.result(timeout=60.0)
            ]
        assert intervals == expected.intervals
        assert service.stats.flushes >= 1

    def test_search_only_service_has_no_replay(self, workload):
        reference, _ = workload
        engine = QueryEngine(ExmaBackend(table=ExmaTable(reference, k=4)))
        with QueryService(engine, None, ServingConfig(replay_workers=2)) as service:
            assert service.replay is None
            service.stop()
