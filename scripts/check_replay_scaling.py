#!/usr/bin/env python
"""Gate on the recorded epoch-parallel replay sweep (``BENCH_accel_replay.json``).

The parallel replay layer is only allowed to exist because it is exactly
equivalent to the serial epoch order — a flush epoch starts from fresh
scheduler/cache/DRAM state (the PR 4 contract), so fanning epochs across
the worker pool must reproduce ``run_stream`` field for field.  This gate
fails when that contract (or the honesty conventions around the record)
breaks:

* the record must carry a ``replay_scaling`` section with at least one
  row, and top-level ``host_cpus``/``available_cpus`` — a sweep recorded
  without its host shape cannot be judged;
* every sweep row must record ``results_equal`` — the parallel
  :meth:`~repro.accel.parallel.ParallelReplay.run_stream` result compared
  equal (dataclass equality, every field) to the serial baseline;
* with ``--require-speedup`` (the multicore CI leg), the widest-worker
  row of every label must beat serial by the threshold (default 1.0x —
  i.e. any real speedup).  Without the flag the timing columns are
  reported but not gated, so a 1-CPU host records an honest ~1x tie
  without failing.

Exit codes: 0 when the gate holds, 1 on a violation, 2 on malformed
input.

Usage: check_replay_scaling.py BENCH_accel_replay.json
           [--require-speedup [MIN_SPEEDUP]]
"""

from __future__ import annotations

import json
import sys

#: Speedup the widest-worker row must clear under ``--require-speedup``.
DEFAULT_MIN_SPEEDUP = 1.0


def main(argv: list[str]) -> int:
    args = list(argv[1:])
    require_speedup = False
    min_speedup = DEFAULT_MIN_SPEEDUP
    if "--require-speedup" in args:
        index = args.index("--require-speedup")
        args.pop(index)
        require_speedup = True
        if index < len(args):
            try:
                min_speedup = float(args[index])
            except ValueError:
                pass
            else:
                args.pop(index)
    if len(args) != 1:
        print(
            f"usage: {argv[0]} BENCH_accel_replay.json "
            "[--require-speedup [MIN_SPEEDUP]]",
            file=sys.stderr,
        )
        return 2
    try:
        with open(args[0], encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"cannot read the replay record: {error}", file=sys.stderr)
        return 2

    failures = []
    for key in ("host_cpus", "available_cpus"):
        if not isinstance(report.get(key), int) or report[key] < 1:
            failures.append(f"record is missing a positive top-level {key!r}")
    scaling = report.get("replay_scaling")
    rows = scaling.get("rows", []) if isinstance(scaling, dict) else []
    if not rows:
        print("no replay_scaling rows recorded", file=sys.stderr)
        return 2

    widest: dict[str, dict] = {}
    for row in rows:
        label = row.get("label", "?")
        workers = row.get("replay_workers", 0)
        print(
            f"{label:>9s}  workers={workers:>2d} ({row.get('executor', '?')})  "
            f"serial={row.get('serial_seconds', 0.0):8.4f}s  "
            f"parallel={row.get('seconds', 0.0):8.4f}s  "
            f"{row.get('speedup', 0.0):5.2f}x  "
            f"pipeline {row.get('pipeline_speedup', 0.0):5.2f}x"
        )
        if not row.get("results_equal", False):
            failures.append(
                f"row {label!r} @ {workers} workers: parallel replay "
                "diverged from the serial epoch order"
            )
        best = widest.get(label)
        if best is None or workers > best.get("replay_workers", 0):
            widest[label] = row

    if require_speedup:
        for label, row in sorted(widest.items()):
            workers = row.get("replay_workers", 0)
            if workers < 2:
                failures.append(
                    f"row {label!r}: --require-speedup needs a multi-worker "
                    f"sweep point (widest recorded: {workers})"
                )
                continue
            speedup = row.get("speedup", 0.0)
            if speedup <= min_speedup:
                failures.append(
                    f"row {label!r} @ {workers} workers: speedup "
                    f"{speedup:.2f}x does not beat the {min_speedup:.2f}x gate"
                )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    verdict = "every sweep row matches the serial epoch order"
    if require_speedup:
        verdict += f" and the widest sweep beats {min_speedup:.2f}x"
    print(f"OK: {verdict} (host_cpus={report['host_cpus']}, "
          f"available_cpus={report['available_cpus']})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
