#!/usr/bin/env python
"""Gate on a recorded serving benchmark (``BENCH_serving.json``).

Asserts the invariants the always-on serving layer must keep under
open-loop load, mirroring ``check_window_capacity.py`` /
``check_accel_replay.py`` for the serving trajectory:

* both recorded arrival processes (``poisson`` and ``bursty``) are
  present — for every recorded worker count — and each row accepted at
  least one query;
* every accepted query completed — the service must not wedge or drop
  admitted work;
* the tail is real: p50/p99/max latency are finite and positive (an
  empty latency list records ``NaN``, which fails here by design);
* sustained throughput stays above a floor (Mbase/s over wall clock;
  ``--min-mbase`` or the optional positional overrides the toy-scale
  default);
* backpressure accounting is coherent: rejections never exceed offered
  load, and any rejection carries a positive ``retry_after`` hint.

When the record carries a saturation sweep (``sweep``), additionally:

* every curve's **top rung rejected work** — a ladder that never
  overloads the service proves nothing about where the knee is;
* per rung: completed == accepted, rejections ≤ offered, and any
  rejection carries a positive ``retry_after``;
* the knee rung's sustained throughput and tails are finite.

With ``--require-worker-scaling`` (the multicore CI leg), also asserts
that for each arrival process the **workers=2 curve sustains strictly
more Mbase/s at its knee than workers=1** — the scale-out must actually
move the saturation point, not just burn threads.

Exit codes: 0 when the invariants hold, 1 on a violation, 2 on
malformed input.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

#: Toy-scale sustained-throughput floor in Mbase/s.  The CI smoke run
#: serves a few hundred queries per second on a shared runner; anything
#: below this means the service effectively stalled.
DEFAULT_MIN_MBASE_PER_SECOND = 0.001

#: Arrival processes every record must carry.
REQUIRED_ARRIVALS = ("poisson", "bursty")


def _finite_positive(value) -> bool:
    return value is not None and math.isfinite(value) and value > 0


def check_rows(rows: list[dict], floor: float, failures: list[str]) -> None:
    """The headline-row invariants (one row per workers × arrival)."""
    seen = {(row.get("arrival"), row.get("workers", 1)) for row in rows}
    for workers in sorted({workers for _, workers in seen}):
        for arrival in REQUIRED_ARRIVALS:
            if (arrival, workers) not in seen:
                failures.append(
                    f"workers={workers}: missing required arrival process {arrival!r}"
                )

    for row in rows:
        label = f"{row.get('arrival')} x{row.get('workers', 1)}"
        print(
            f"{label:>12s}  accepted={row.get('accepted', 0):>6d}  "
            f"rejected={row.get('rejected', 0):>5d}  "
            f"sustained={row.get('mbase_per_second', float('nan')):8.4f} Mbase/s  "
            f"p50={row.get('p50_ms', float('nan')):7.2f} ms  "
            f"p99={row.get('p99_ms', float('nan')):7.2f} ms"
        )
        if row.get("accepted", 0) <= 0:
            failures.append(f"{label}: no queries accepted")
            continue
        if row.get("completed", 0) != row.get("accepted", 0):
            failures.append(
                f"{label}: completed {row.get('completed')} != accepted "
                f"{row.get('accepted')} (service dropped admitted work)"
            )
        for key in ("p50_ms", "p99_ms", "max_ms"):
            if not _finite_positive(row.get(key)):
                failures.append(f"{label}: {key}={row.get(key)!r} is not finite and positive")
        sustained = row.get("mbase_per_second")
        if sustained is None or not math.isfinite(sustained) or sustained < floor:
            failures.append(
                f"{label}: sustained throughput {sustained!r} Mbase/s below the "
                f"{floor} floor"
            )
        if row.get("rejected", 0) > row.get("submitted", 0):
            failures.append(
                f"{label}: rejected {row.get('rejected')} exceeds submitted "
                f"{row.get('submitted')}"
            )
        if row.get("rejected", 0) > 0 and row.get("mean_retry_after_s", 0.0) <= 0:
            failures.append(
                f"{label}: rejections recorded without a positive retry_after hint"
            )


def check_sweep(sweep: dict, require_worker_scaling: bool, failures: list[str]) -> None:
    """The saturation-sweep invariants (knee reached, coherent rungs)."""
    curves = sweep.get("curves", [])
    if not curves:
        failures.append("sweep recorded with no curves")
        return

    knees: dict[tuple[str, int], float] = {}
    for curve in curves:
        arrival = curve.get("arrival")
        workers = curve.get("workers", 1)
        label = f"sweep {arrival} x{workers}"
        rungs = curve.get("rungs", [])
        if not rungs:
            failures.append(f"{label}: no rungs recorded")
            continue
        knee_index = curve.get("knee_index", 0)
        if not 0 <= knee_index < len(rungs):
            failures.append(f"{label}: knee_index {knee_index} out of range")
            continue
        knee = rungs[knee_index]
        knees[(arrival, workers)] = knee.get("mbase_per_second", float("nan"))
        print(
            f"{label:>20s}  knee={knee.get('offered_qps', float('nan')):8.0f} qps  "
            f"sustained={knee.get('mbase_per_second', float('nan')):8.4f} Mbase/s  "
            f"top-rung rejected={rungs[-1].get('rejected', 0)}"
        )
        if rungs[-1].get("rejected", 0) <= 0:
            failures.append(
                f"{label}: top rung never rejected — the ladder did not reach "
                "saturation, so the knee is unproven (raise the multipliers or "
                "tighten the sweep queue capacity)"
            )
        if not _finite_positive(knee.get("mbase_per_second")):
            failures.append(
                f"{label}: knee sustained throughput "
                f"{knee.get('mbase_per_second')!r} is not finite and positive"
            )
        for key in ("p50_ms", "p99_ms"):
            if not _finite_positive(knee.get(key)):
                failures.append(f"{label}: knee {key}={knee.get(key)!r} is not finite and positive")
        for rung in rungs:
            rung_label = f"{label} @ {rung.get('offered_qps', float('nan')):.0f} qps"
            if rung.get("completed", 0) != rung.get("accepted", 0):
                failures.append(
                    f"{rung_label}: completed {rung.get('completed')} != accepted "
                    f"{rung.get('accepted')}"
                )
            if rung.get("rejected", 0) > rung.get("submitted", 0):
                failures.append(
                    f"{rung_label}: rejected {rung.get('rejected')} exceeds "
                    f"submitted {rung.get('submitted')}"
                )
            if rung.get("rejected", 0) > 0 and rung.get("mean_retry_after_s", 0.0) <= 0:
                failures.append(
                    f"{rung_label}: rejections without a positive retry_after hint"
                )

    if require_worker_scaling:
        for arrival in REQUIRED_ARRIVALS:
            one = knees.get((arrival, 1))
            two = knees.get((arrival, 2))
            if one is None or two is None:
                failures.append(
                    f"sweep {arrival}: --require-worker-scaling needs both the "
                    "workers=1 and workers=2 curves"
                )
                continue
            if not (math.isfinite(one) and math.isfinite(two) and two > one):
                failures.append(
                    f"sweep {arrival}: workers=2 knee sustained {two!r} Mbase/s "
                    f"is not strictly above workers=1 ({one!r}) — the worker "
                    "pool did not scale the saturation point"
                )


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("record", help="BENCH_serving.json path")
    parser.add_argument(
        "floor",
        nargs="?",
        type=float,
        default=None,
        help="sustained-throughput floor in Mbase/s (positional, legacy)",
    )
    parser.add_argument(
        "--min-mbase",
        type=float,
        default=None,
        help=f"sustained-throughput floor in Mbase/s (default {DEFAULT_MIN_MBASE_PER_SECOND})",
    )
    parser.add_argument(
        "--require-worker-scaling",
        action="store_true",
        help="assert the workers=2 knee sustains strictly more than workers=1 "
        "per arrival process (multicore CI leg only)",
    )
    args = parser.parse_args(argv[1:])
    floor = args.min_mbase if args.min_mbase is not None else args.floor
    if floor is None:
        floor = DEFAULT_MIN_MBASE_PER_SECOND

    try:
        with open(args.record, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"cannot read {args.record}: {error}", file=sys.stderr)
        return 2
    rows = report.get("rows", [])
    if not rows:
        print("no serving rows recorded", file=sys.stderr)
        return 2

    failures: list[str] = []
    check_rows(rows, floor, failures)
    sweep = report.get("sweep")
    if sweep is not None:
        check_sweep(sweep, args.require_worker_scaling, failures)
    elif args.require_worker_scaling:
        failures.append("--require-worker-scaling set but the record has no sweep")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: serving sustained the load with finite tails and coherent backpressure")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
