#!/usr/bin/env python
"""Gate on a recorded serving benchmark (``BENCH_serving.json``).

Asserts the invariants the always-on serving layer must keep under
open-loop load, mirroring ``check_window_capacity.py`` /
``check_accel_replay.py`` for the serving trajectory:

* both recorded arrival processes (``poisson`` and ``bursty``) are
  present and each accepted at least one query;
* every accepted query completed — the service must not wedge or drop
  admitted work;
* the tail is real: p50/p99/max latency are finite and positive (an
  empty latency list records ``NaN``, which fails here by design);
* sustained throughput stays above a floor (Mbase/s over wall clock; the
  optional second argument overrides the toy-scale default);
* backpressure accounting is coherent: rejections never exceed offered
  load, and any rejection carries a positive ``retry_after`` hint.

Exit codes: 0 when the invariants hold, 1 on a violation, 2 on
malformed input.
"""

from __future__ import annotations

import json
import math
import sys

#: Toy-scale sustained-throughput floor in Mbase/s.  The CI smoke run
#: serves a few hundred queries per second on a shared runner; anything
#: below this means the service effectively stalled.
DEFAULT_MIN_MBASE_PER_SECOND = 0.001

#: Arrival processes every record must carry.
REQUIRED_ARRIVALS = ("poisson", "bursty")


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(f"usage: {argv[0]} BENCH_serving.json [min_mbase_per_second]", file=sys.stderr)
        return 2
    floor = float(argv[2]) if len(argv) == 3 else DEFAULT_MIN_MBASE_PER_SECOND
    with open(argv[1], encoding="utf-8") as handle:
        report = json.load(handle)
    rows = {row.get("arrival"): row for row in report.get("rows", [])}
    if not rows:
        print("no serving rows recorded", file=sys.stderr)
        return 2

    for arrival, row in rows.items():
        print(
            f"{arrival:>8s}  accepted={row.get('accepted', 0):>6d}  "
            f"rejected={row.get('rejected', 0):>5d}  "
            f"sustained={row.get('mbase_per_second', float('nan')):8.4f} Mbase/s  "
            f"p50={row.get('p50_ms', float('nan')):7.2f} ms  "
            f"p99={row.get('p99_ms', float('nan')):7.2f} ms"
        )

    failures = []
    for arrival in REQUIRED_ARRIVALS:
        if arrival not in rows:
            failures.append(f"missing required arrival process {arrival!r}")
    for arrival, row in rows.items():
        if row.get("accepted", 0) <= 0:
            failures.append(f"{arrival}: no queries accepted")
            continue
        if row.get("completed", 0) != row.get("accepted", 0):
            failures.append(
                f"{arrival}: completed {row.get('completed')} != accepted "
                f"{row.get('accepted')} (service dropped admitted work)"
            )
        for key in ("p50_ms", "p99_ms", "max_ms"):
            value = row.get(key)
            if value is None or not math.isfinite(value) or value <= 0:
                failures.append(f"{arrival}: {key}={value!r} is not finite and positive")
        sustained = row.get("mbase_per_second")
        if sustained is None or not math.isfinite(sustained) or sustained < floor:
            failures.append(
                f"{arrival}: sustained throughput {sustained!r} Mbase/s below the "
                f"{floor} floor"
            )
        if row.get("rejected", 0) > row.get("submitted", 0):
            failures.append(
                f"{arrival}: rejected {row.get('rejected')} exceeds submitted "
                f"{row.get('submitted')}"
            )
        if row.get("rejected", 0) > 0 and row.get("mean_retry_after_s", 0.0) <= 0:
            failures.append(
                f"{arrival}: rejections recorded without a positive retry_after hint"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: serving sustained the load with finite tails and coherent backpressure")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
