#!/usr/bin/env python
"""Gate on a recorded shard-scaling report (``BENCH_shard_scaling.json``).

The dev container that grew this repository has one CPU, so its recorded
forced-split rows can only measure overhead; the CI multicore leg re-runs
``repro-exma experiment shard-scaling --json`` on a >= 4-vCPU runner and
this script asserts what the single-core host never could: a *forced*
thread-shard split beats the serial engine in wall-clock
(``speedup > 1``).

Exit codes: 0 when the assertion holds (or the host cannot host the
claim — fewer than 2 available CPUs), 1 when a multicore host fails to
show a forced thread win, 2 on malformed input.
"""

from __future__ import annotations

import json
import sys


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} BENCH_shard_scaling.json", file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as handle:
        report = json.load(handle)
    cpus = report.get("available_cpus") or report.get("host_cpus") or 1
    rows = [
        row
        for row in report.get("rows", [])
        if row.get("forced") and row.get("executor") == "thread"
    ]
    if not rows:
        print("no forced thread rows recorded — run with include_forced", file=sys.stderr)
        return 2

    for row in rows:
        print(
            f"forced thread shards={row['shards']:>2d} "
            f"{row['ms']:9.2f} ms  speedup {row['speedup']:.3f}x"
        )
    if cpus < 2:
        print(
            f"only {cpus} CPU available: a forced split cannot win wall-clock "
            "here; skipping the speedup assertion (recorded for the trajectory)."
        )
        return 0

    # Only splits the hardware can actually parallelise are held to the bar.
    eligible = [row for row in rows if row["shards"] <= cpus] or rows
    best = max(eligible, key=lambda row: row["speedup"])
    if best["speedup"] > 1.0:
        print(
            f"OK: forced {best['shards']}-thread split is {best['speedup']:.3f}x "
            f"serial on {cpus} CPUs"
        )
        return 0
    print(
        f"FAIL: best forced thread split ({best['shards']} shards) reached only "
        f"{best['speedup']:.3f}x serial on {cpus} CPUs — the sharded path "
        "regressed past its split overhead",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
