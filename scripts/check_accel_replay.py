#!/usr/bin/env python
"""Gate on a recorded replay comparison (``BENCH_accel_replay.json``).

The columnar accelerator replay is only allowed to exist because it is
(a) exactly equivalent to the object reference and (b) much faster.  This
gate fails when either leg of that bargain breaks:

* every row must record ``results_equal`` — the columnar
  :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run` produced a
  field-for-field identical result to
  :meth:`~repro.accel.exma_accelerator.ExmaAccelerator.run_reference`;
* every row's object-to-columnar speedup must clear the threshold
  (default 2x — the CI smoke runs at toy scale where fixed overheads
  eat most of the win; the committed record at the Fig. 18 workload
  clears 10x).

Exit codes: 0 when the gate holds, 1 on a violation, 2 on malformed
input.

Usage: check_accel_replay.py BENCH_accel_replay.json [MIN_SPEEDUP]
"""

from __future__ import annotations

import json
import sys

#: Minimum tolerated object-to-columnar speedup on any row.
DEFAULT_MIN_SPEEDUP = 2.0


def main(argv: list[str]) -> int:
    if len(argv) not in (2, 3):
        print(
            f"usage: {argv[0]} BENCH_accel_replay.json [MIN_SPEEDUP]",
            file=sys.stderr,
        )
        return 2
    try:
        min_speedup = DEFAULT_MIN_SPEEDUP if len(argv) == 2 else float(argv[2])
        with open(argv[1], encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as error:
        # ValueError covers both a malformed threshold and invalid JSON
        # (json.JSONDecodeError subclasses it).
        print(f"cannot read the replay record: {error}", file=sys.stderr)
        return 2
    rows = report.get("rows", [])
    if not rows:
        print("no replay rows recorded", file=sys.stderr)
        return 2

    failures = []
    for row in rows:
        label = row.get("label", "?")
        speedup = row.get("speedup", 0.0)
        print(
            f"{label:>9s}  requests={row.get('requests', 0):>8d}  "
            f"object={row.get('object_seconds', 0.0):8.3f}s  "
            f"columnar={row.get('columnar_seconds', 0.0):8.4f}s  "
            f"{speedup:6.1f}x"
        )
        if not row.get("results_equal", False):
            failures.append(
                f"row {label!r}: columnar replay diverged from the object reference"
            )
        if speedup < min_speedup:
            failures.append(
                f"row {label!r}: speedup {speedup:.2f}x below the {min_speedup:.1f}x gate"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: columnar replay matches the object reference on every row "
        f"and clears {min_speedup:.1f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
