#!/usr/bin/env python
"""Gate on a recorded window-capacity report (``BENCH_window_capacity.json``).

Asserts the two invariants the windowed accelerator pipeline is built on:

* the W=1 sweep row is byte-identical to the unwindowed per-batch path
  (the harness records the flush-by-flush comparison as
  ``w1_matches_unwindowed``, and the headline counters must agree too);
* scheduled requests are monotone non-increasing in W — a wider
  scheduling window may only merge more duplicates (a set-union
  guarantee, so it is enforced strictly);
* cycles follow the same trend: the widest window must beat W=1 and no
  step may *increase* cycles by more than ``CYCLE_SLACK`` — the cycle
  count is a modelled consequence of the shrinking stream, and changing
  scheduling-epoch boundaries can move row-conflict patterns by a
  percent or two even as the stream monotonically shrinks.

Exit codes: 0 when the invariants hold, 1 on a violation, 2 on
malformed input.
"""

from __future__ import annotations

import json
import sys

#: Largest tolerated *relative increase* in total cycles from one sweep
#: point to the next wider one (model noise from shifted epoch
#: boundaries); the widest window must still strictly beat W=1.
CYCLE_SLACK = 0.02


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {argv[0]} BENCH_window_capacity.json", file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as handle:
        report = json.load(handle)
    rows = sorted(report.get("rows", []), key=lambda row: row["window"])
    if not rows:
        print("no sweep rows recorded", file=sys.stderr)
        return 2

    for row in rows:
        print(
            f"W={row['window']:>2d}  post={row['post_merge_requests']:>8d}  "
            f"cycles={row['total_cycles']:>10d}  {row['mbase_per_second']:9.2f} Mbase/s"
        )

    failures = []
    if not report.get("w1_matches_unwindowed", False):
        failures.append("W=1 flushes diverged from the unwindowed per-batch path")
    unwindowed = report.get("unwindowed", {})
    if rows[0]["window"] == 1 and unwindowed:
        for key in ("post_merge_requests", "total_cycles", "dram_requests"):
            if rows[0].get(key) != unwindowed.get(key):
                failures.append(
                    f"W=1 row {key}={rows[0].get(key)} != unwindowed {unwindowed.get(key)}"
                )
    posts = [row["post_merge_requests"] for row in rows]
    if posts != sorted(posts, reverse=True):
        failures.append(f"post_merge_requests not monotone non-increasing in W: {posts}")
    cycles = [row["total_cycles"] for row in rows]
    for previous, current in zip(cycles, cycles[1:]):
        if current > previous * (1 + CYCLE_SLACK):
            failures.append(
                f"total_cycles rose by more than {CYCLE_SLACK:.0%} within the sweep: "
                f"{cycles}"
            )
            break
    if len(cycles) > 1 and cycles[-1] >= cycles[0]:
        failures.append(
            f"widest window did not reduce cycles: W={rows[-1]['window']} has "
            f"{cycles[-1]} vs W={rows[0]['window']}'s {cycles[0]}"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: W=1 matches the unwindowed path and the sweep trend holds")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
