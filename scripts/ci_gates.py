#!/usr/bin/env python
"""One runner for every recorded-benchmark CI gate.

The five ad-hoc ``check_*.py`` scripts this consolidates each loaded a
JSON record, printed its rows and failed on broken invariants; the only
thing that differed was the invariant list.  Here every gate is a
registration — a function plus a default record path — sharing the
loading/printing/failure plumbing, so a CI leg calls one entrypoint and
a new benchmark gate is ~one function, not a new script.

Gate specs take the form ``NAME[=RECORD][:OPT[=VALUE]...]``::

    ci_gates.py --gate window=bench_smoke_window_capacity.json
    ci_gates.py --gate serving=B.json:min-mbase=0.01:require-worker-scaling
    ci_gates.py --gate replay-scaling=B.json:require-speedup:min-speedup=1.0

Bare comma-separated names run against each gate's committed default
record (``--gate replay,serving,dse``).  ``--list`` prints the registry.

Exit codes: 0 when every requested gate holds, 1 on any violation, 2 on
malformed input (unknown gate, unreadable record, bad option).
"""

from __future__ import annotations

import argparse
import json
import math
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Callable

#: Arrival processes every serving record must carry.
REQUIRED_ARRIVALS = ("poisson", "bursty")

#: Largest tolerated relative cycle increase within the window sweep.
CYCLE_SLACK = 0.02

#: Largest tolerated relative drop of a committed numeric headline in
#: ``bench-diff`` (wall-clock numbers re-recorded on another host move;
#: a one-third collapse is a regression, not noise).
DIFF_TOLERANCE = 0.30


class GateInputError(Exception):
    """Malformed record or options — exit 2, not a gate violation."""


@dataclass
class GateRun:
    """Shared context of one gate invocation: output plus its verdict."""

    gate: str
    record_path: "str | None"
    options: dict
    failures: list = field(default_factory=list)

    def emit(self, line: str) -> None:
        print(line)

    def fail(self, message: str) -> None:
        self.failures.append(message)

    def ok(self, message: str) -> None:
        if not self.failures:
            print(f"OK [{self.gate}]: {message}")

    # ---------------- option parsing helpers ---------------- #

    def flag(self, name: str) -> bool:
        return name in self.options

    def number(self, name: str, default: float) -> float:
        value = self.options.get(name)
        if value in (None, ""):
            return default
        try:
            return float(value)
        except ValueError:
            raise GateInputError(f"option {name!r} needs a number, got {value!r}")

    def text(self, name: str, default: "str | None" = None) -> "str | None":
        value = self.options.get(name)
        return default if value in (None, "") else value


def load_record(path: "str | None") -> dict:
    """Load a benchmark record, mapping any I/O or JSON error to exit 2."""
    if not path:
        raise GateInputError("this gate needs a record path (NAME=RECORD)")
    try:
        with open(path, encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, ValueError) as error:
        raise GateInputError(f"cannot read {path}: {error}") from None
    if not isinstance(record, dict):
        raise GateInputError(f"{path}: expected a JSON object record")
    return record


def require_rows(record: dict, key: str, what: str) -> list:
    rows = record.get(key, [])
    if not rows:
        raise GateInputError(f"no {what} recorded")
    return rows


def _finite_positive(value) -> bool:
    return value is not None and math.isfinite(value) and value > 0


@dataclass(frozen=True)
class Gate:
    """One registered gate: the check plus its committed default record."""

    name: str
    run: Callable[[GateRun], None]
    default_record: "str | None"
    description: str


GATES: "dict[str, Gate]" = {}

#: Short names accepted in ``--gate`` specs for convenience.
ALIASES = {"replay": "accel-replay", "scaling": "replay-scaling"}


def register(name: str, default_record: "str | None", description: str):
    def wrap(fn: Callable[[GateRun], None]):
        GATES[name] = Gate(name, fn, default_record, description)
        return fn

    return wrap


# --------------------------------------------------------------------- #
# The gates
# --------------------------------------------------------------------- #


@register(
    "accel-replay",
    "BENCH_accel_replay.json",
    "columnar replay equals the object reference and clears min-speedup "
    "(options: min-speedup=2.0)",
)
def gate_accel_replay(run: GateRun) -> None:
    record = load_record(run.record_path)
    min_speedup = run.number("min-speedup", 2.0)
    rows = require_rows(record, "rows", "replay rows")
    for row in rows:
        label = row.get("label", "?")
        speedup = row.get("speedup", 0.0)
        run.emit(
            f"{label:>9s}  requests={row.get('requests', 0):>8d}  "
            f"object={row.get('object_seconds', 0.0):8.3f}s  "
            f"columnar={row.get('columnar_seconds', 0.0):8.4f}s  "
            f"{speedup:6.1f}x"
        )
        if not row.get("results_equal", False):
            run.fail(f"row {label!r}: columnar replay diverged from the object reference")
        if speedup < min_speedup:
            run.fail(
                f"row {label!r}: speedup {speedup:.2f}x below the {min_speedup:.1f}x gate"
            )
    run.ok(
        f"columnar replay matches the object reference on every row "
        f"and clears {min_speedup:.1f}x"
    )


@register(
    "replay-scaling",
    "BENCH_accel_replay.json",
    "epoch-parallel sweep matches the serial order "
    "(options: require-speedup, min-speedup=1.0)",
)
def gate_replay_scaling(run: GateRun) -> None:
    record = load_record(run.record_path)
    require_speedup = run.flag("require-speedup")
    min_speedup = run.number("min-speedup", 1.0)
    for key in ("host_cpus", "available_cpus"):
        if not isinstance(record.get(key), int) or record[key] < 1:
            run.fail(f"record is missing a positive top-level {key!r}")
    scaling = record.get("replay_scaling")
    rows = scaling.get("rows", []) if isinstance(scaling, dict) else []
    if not rows:
        raise GateInputError("no replay_scaling rows recorded")

    widest: dict = {}
    for row in rows:
        label = row.get("label", "?")
        workers = row.get("replay_workers", 0)
        run.emit(
            f"{label:>9s}  workers={workers:>2d} ({row.get('executor', '?')})  "
            f"serial={row.get('serial_seconds', 0.0):8.4f}s  "
            f"parallel={row.get('seconds', 0.0):8.4f}s  "
            f"{row.get('speedup', 0.0):5.2f}x  "
            f"pipeline {row.get('pipeline_speedup', 0.0):5.2f}x"
        )
        if not row.get("results_equal", False):
            run.fail(
                f"row {label!r} @ {workers} workers: parallel replay "
                "diverged from the serial epoch order"
            )
        best = widest.get(label)
        if best is None or workers > best.get("replay_workers", 0):
            widest[label] = row

    if require_speedup:
        for label, row in sorted(widest.items()):
            workers = row.get("replay_workers", 0)
            if workers < 2:
                run.fail(
                    f"row {label!r}: require-speedup needs a multi-worker "
                    f"sweep point (widest recorded: {workers})"
                )
                continue
            speedup = row.get("speedup", 0.0)
            if speedup <= min_speedup:
                run.fail(
                    f"row {label!r} @ {workers} workers: speedup "
                    f"{speedup:.2f}x does not beat the {min_speedup:.2f}x gate"
                )
    verdict = "every sweep row matches the serial epoch order"
    if require_speedup:
        verdict += f" and the widest sweep beats {min_speedup:.2f}x"
    run.ok(
        f"{verdict} (host_cpus={record.get('host_cpus')}, "
        f"available_cpus={record.get('available_cpus')})"
    )


@register(
    "window",
    "BENCH_window_capacity.json",
    "W=1 equals the unwindowed path; requests/cycles trend holds with W",
)
def gate_window(run: GateRun) -> None:
    record = load_record(run.record_path)
    rows = sorted(require_rows(record, "rows", "sweep rows"), key=lambda row: row["window"])
    for row in rows:
        run.emit(
            f"W={row['window']:>2d}  post={row['post_merge_requests']:>8d}  "
            f"cycles={row['total_cycles']:>10d}  {row['mbase_per_second']:9.2f} Mbase/s"
        )
    if not record.get("w1_matches_unwindowed", False):
        run.fail("W=1 flushes diverged from the unwindowed per-batch path")
    unwindowed = record.get("unwindowed", {})
    if rows[0]["window"] == 1 and unwindowed:
        for key in ("post_merge_requests", "total_cycles", "dram_requests"):
            if rows[0].get(key) != unwindowed.get(key):
                run.fail(
                    f"W=1 row {key}={rows[0].get(key)} != unwindowed {unwindowed.get(key)}"
                )
    posts = [row["post_merge_requests"] for row in rows]
    if posts != sorted(posts, reverse=True):
        run.fail(f"post_merge_requests not monotone non-increasing in W: {posts}")
    cycles = [row["total_cycles"] for row in rows]
    for previous, current in zip(cycles, cycles[1:]):
        if current > previous * (1 + CYCLE_SLACK):
            run.fail(
                f"total_cycles rose by more than {CYCLE_SLACK:.0%} within the sweep: "
                f"{cycles}"
            )
            break
    if len(cycles) > 1 and cycles[-1] >= cycles[0]:
        run.fail(
            f"widest window did not reduce cycles: W={rows[-1]['window']} has "
            f"{cycles[-1]} vs W={rows[0]['window']}'s {cycles[0]}"
        )
    run.ok("W=1 matches the unwindowed path and the sweep trend holds")


@register(
    "shard-speedup",
    "BENCH_shard_scaling.json",
    "a forced thread-shard split beats serial wall-clock on a multicore host",
)
def gate_shard_speedup(run: GateRun) -> None:
    record = load_record(run.record_path)
    cpus = record.get("available_cpus") or record.get("host_cpus") or 1
    rows = [
        row
        for row in record.get("rows", [])
        if row.get("forced") and row.get("executor") == "thread"
    ]
    if not rows:
        raise GateInputError("no forced thread rows recorded — run with include_forced")
    for row in rows:
        run.emit(
            f"forced thread shards={row['shards']:>2d} "
            f"{row['ms']:9.2f} ms  speedup {row['speedup']:.3f}x"
        )
    if cpus < 2:
        run.ok(
            f"only {cpus} CPU available: a forced split cannot win wall-clock "
            "here; skipping the speedup assertion (recorded for the trajectory)"
        )
        return
    # Only splits the hardware can actually parallelise are held to the bar.
    eligible = [row for row in rows if row["shards"] <= cpus] or rows
    best = max(eligible, key=lambda row: row["speedup"])
    if best["speedup"] > 1.0:
        run.ok(
            f"forced {best['shards']}-thread split is {best['speedup']:.3f}x "
            f"serial on {cpus} CPUs"
        )
        return
    run.fail(
        f"best forced thread split ({best['shards']} shards) reached only "
        f"{best['speedup']:.3f}x serial on {cpus} CPUs — the sharded path "
        "regressed past its split overhead"
    )


@register(
    "serving",
    "BENCH_serving.json",
    "serving sustained load with finite tails and coherent backpressure "
    "(options: min-mbase=0.001, require-worker-scaling)",
)
def gate_serving(run: GateRun) -> None:
    record = load_record(run.record_path)
    floor = run.number("min-mbase", 0.001)
    require_worker_scaling = run.flag("require-worker-scaling")
    rows = require_rows(record, "rows", "serving rows")

    seen = {(row.get("arrival"), row.get("workers", 1)) for row in rows}
    for workers in sorted({workers for _, workers in seen}):
        for arrival in REQUIRED_ARRIVALS:
            if (arrival, workers) not in seen:
                run.fail(f"workers={workers}: missing required arrival process {arrival!r}")
    for row in rows:
        label = f"{row.get('arrival')} x{row.get('workers', 1)}"
        run.emit(
            f"{label:>12s}  accepted={row.get('accepted', 0):>6d}  "
            f"rejected={row.get('rejected', 0):>5d}  "
            f"sustained={row.get('mbase_per_second', float('nan')):8.4f} Mbase/s  "
            f"p50={row.get('p50_ms', float('nan')):7.2f} ms  "
            f"p99={row.get('p99_ms', float('nan')):7.2f} ms"
        )
        if row.get("accepted", 0) <= 0:
            run.fail(f"{label}: no queries accepted")
            continue
        if row.get("completed", 0) != row.get("accepted", 0):
            run.fail(
                f"{label}: completed {row.get('completed')} != accepted "
                f"{row.get('accepted')} (service dropped admitted work)"
            )
        for key in ("p50_ms", "p99_ms", "max_ms"):
            if not _finite_positive(row.get(key)):
                run.fail(f"{label}: {key}={row.get(key)!r} is not finite and positive")
        sustained = row.get("mbase_per_second")
        if sustained is None or not math.isfinite(sustained) or sustained < floor:
            run.fail(
                f"{label}: sustained throughput {sustained!r} Mbase/s below the "
                f"{floor} floor"
            )
        if row.get("rejected", 0) > row.get("submitted", 0):
            run.fail(
                f"{label}: rejected {row.get('rejected')} exceeds submitted "
                f"{row.get('submitted')}"
            )
        if row.get("rejected", 0) > 0 and row.get("mean_retry_after_s", 0.0) <= 0:
            run.fail(f"{label}: rejections recorded without a positive retry_after hint")

    sweep = record.get("sweep")
    if sweep is not None:
        _check_serving_sweep(run, sweep, require_worker_scaling)
    elif require_worker_scaling:
        run.fail("require-worker-scaling set but the record has no sweep")
    run.ok("serving sustained the load with finite tails and coherent backpressure")


def _check_serving_sweep(run: GateRun, sweep: dict, require_worker_scaling: bool) -> None:
    """The saturation-sweep invariants (knee reached, coherent rungs)."""
    curves = sweep.get("curves", [])
    if not curves:
        run.fail("sweep recorded with no curves")
        return
    knees: dict = {}
    for curve in curves:
        arrival = curve.get("arrival")
        workers = curve.get("workers", 1)
        label = f"sweep {arrival} x{workers}"
        rungs = curve.get("rungs", [])
        if not rungs:
            run.fail(f"{label}: no rungs recorded")
            continue
        knee_index = curve.get("knee_index", 0)
        if not 0 <= knee_index < len(rungs):
            run.fail(f"{label}: knee_index {knee_index} out of range")
            continue
        knee = rungs[knee_index]
        knees[(arrival, workers)] = knee.get("mbase_per_second", float("nan"))
        run.emit(
            f"{label:>20s}  knee={knee.get('offered_qps', float('nan')):8.0f} qps  "
            f"sustained={knee.get('mbase_per_second', float('nan')):8.4f} Mbase/s  "
            f"top-rung rejected={rungs[-1].get('rejected', 0)}"
        )
        if rungs[-1].get("rejected", 0) <= 0:
            run.fail(
                f"{label}: top rung never rejected — the ladder did not reach "
                "saturation, so the knee is unproven (raise the multipliers or "
                "tighten the sweep queue capacity)"
            )
        if not _finite_positive(knee.get("mbase_per_second")):
            run.fail(
                f"{label}: knee sustained throughput "
                f"{knee.get('mbase_per_second')!r} is not finite and positive"
            )
        for key in ("p50_ms", "p99_ms"):
            if not _finite_positive(knee.get(key)):
                run.fail(f"{label}: knee {key}={knee.get(key)!r} is not finite and positive")
        for rung in rungs:
            rung_label = f"{label} @ {rung.get('offered_qps', float('nan')):.0f} qps"
            if rung.get("completed", 0) != rung.get("accepted", 0):
                run.fail(
                    f"{rung_label}: completed {rung.get('completed')} != accepted "
                    f"{rung.get('accepted')}"
                )
            if rung.get("rejected", 0) > rung.get("submitted", 0):
                run.fail(
                    f"{rung_label}: rejected {rung.get('rejected')} exceeds "
                    f"submitted {rung.get('submitted')}"
                )
            if rung.get("rejected", 0) > 0 and rung.get("mean_retry_after_s", 0.0) <= 0:
                run.fail(f"{rung_label}: rejections without a positive retry_after hint")

    if require_worker_scaling:
        for arrival in REQUIRED_ARRIVALS:
            one = knees.get((arrival, 1))
            two = knees.get((arrival, 2))
            if one is None or two is None:
                run.fail(
                    f"sweep {arrival}: require-worker-scaling needs both the "
                    "workers=1 and workers=2 curves"
                )
                continue
            if not (math.isfinite(one) and math.isfinite(two) and two > one):
                run.fail(
                    f"sweep {arrival}: workers=2 knee sustained {two!r} Mbase/s "
                    f"is not strictly above workers=1 ({one!r}) — the worker "
                    "pool did not scale the saturation point"
                )


def _pareto_indices(vectors: "list[tuple]") -> "list[int]":
    """Non-dominated indices, every objective maximised (ties never
    dominate) — mirrors ``repro.accel.configspace.pareto_frontier`` so
    the gate recomputes membership without importing the package."""
    frontier = []
    for i, candidate in enumerate(vectors):
        dominated = False
        for j, other in enumerate(vectors):
            if j == i or other == candidate:
                continue
            if all(o >= c for o, c in zip(other, candidate)):
                dominated = True
                break
        if not dominated:
            frontier.append(i)
    return frontier


@register(
    "dse",
    "BENCH_dse.json",
    "DSE record: baseline equals run, frontier non-empty/dominant/re-derivable, "
    ">= 2 swept knobs",
)
def gate_dse(run: GateRun) -> None:
    record = load_record(run.record_path)
    rows = require_rows(record, "rows", "design-point rows")
    frontier = record.get("frontier", [])

    grid = record.get("grid") or {}
    swept = [axis for axis, values in grid.items() if len(values) >= 2]
    run.emit(
        f"grid: {len(grid)} axes, swept {swept} -> {len(rows)} rows, "
        f"{len(frontier)} on the frontier"
    )
    if len(swept) < 2:
        run.fail(
            f"the sweep must move at least two knobs (>= 2 values each); "
            f"swept axes: {swept}"
        )

    baseline = record.get("baseline", {})
    if not baseline.get("matches_run", False):
        run.fail("baseline design point diverged from ExmaAccelerator.run")
    baseline_rows = [row for row in rows if row.get("baseline")]
    if len(baseline_rows) != 1:
        run.fail(f"expected exactly one baseline row, found {len(baseline_rows)}")
    elif baseline.get("label") and baseline_rows[0].get("label") != baseline["label"]:
        run.fail(
            f"baseline row label {baseline_rows[0].get('label')!r} != "
            f"recorded baseline {baseline['label']!r}"
        )

    labels = [row.get("label") for row in rows]
    if len(set(labels)) != len(labels):
        run.fail("duplicate design-point labels in the record")
    by_label = {row.get("label"): row for row in rows}
    for row in rows:
        marker = "*" if row.get("on_frontier") else " "
        run.emit(
            f" {marker} {row.get('label', '?'):>36s}  "
            f"{row.get('mbase_per_second', float('nan')):9.2f} Mbase/s  "
            f"{row.get('energy_per_base_nj', float('nan')):8.3f} nJ/base  "
            f"{row.get('area_mm2', float('nan')):7.3f} mm2"
        )
        for key in ("mbase_per_second", "energy_per_base_nj", "area_mm2"):
            if not _finite_positive(row.get(key)):
                run.fail(f"row {row.get('label')!r}: {key}={row.get(key)!r} is not "
                         "finite and positive")

    if not frontier:
        run.fail("empty Pareto frontier")
    for point in frontier:
        label = point.get("label")
        if label not in by_label:
            run.fail(f"frontier point {label!r} has no matching row")
            continue
        if not point.get("rederived_equal", False):
            run.fail(f"frontier point {label!r} did not re-derive bit-identically")
        row = by_label[label]
        for key in ("mbase_per_second", "energy_per_base_nj", "area_mm2"):
            if point.get(key) != row.get(key):
                run.fail(
                    f"frontier point {label!r}: {key} {point.get(key)!r} != "
                    f"row value {row.get(key)!r}"
                )

    # Pareto dominance recomputed from the recorded rows alone: the
    # stored membership (frontier list and per-row flags) must match.
    vectors = [
        (
            row.get("mbase_per_second", float("nan")),
            -row.get("energy_per_base_nj", float("nan")),
            -row.get("area_mm2", float("nan")),
        )
        for row in rows
    ]
    recomputed = {rows[i].get("label") for i in _pareto_indices(vectors)}
    recorded = {point.get("label") for point in frontier}
    if recomputed != recorded:
        run.fail(
            f"recorded frontier {sorted(recorded)} != recomputed Pareto set "
            f"{sorted(recomputed)}"
        )
    flagged = {row.get("label") for row in rows if row.get("on_frontier")}
    if flagged != recorded:
        run.fail(
            f"per-row on_frontier flags {sorted(flagged)} disagree with the "
            f"frontier section {sorted(recorded)}"
        )
    run.ok(
        f"baseline equals run, {len(frontier)} frontier points all re-derivable, "
        "and Pareto membership recomputes from the record"
    )


@register(
    "chaos",
    "BENCH_chaos.json",
    "zero stranded tickets under injected faults, availability floor, "
    "fault-free row clean (options: min-availability=0.95)",
)
def gate_chaos(run: GateRun) -> None:
    record = load_record(run.record_path)
    floor = run.number("min-availability", 0.95)
    rows = require_rows(record, "rows", "chaos rows")

    labels = [row.get("label") for row in rows]
    if len(set(labels)) != len(labels):
        run.fail("duplicate scenario labels in the record")
    fault_free_rows = [row for row in rows if not row.get("faulted", True)]
    if not fault_free_rows:
        run.fail("no fault-free control scenario recorded")
    if len(rows) - len(fault_free_rows) < 1:
        run.fail("no faulted scenario recorded — the harness injected nothing")

    for row in rows:
        label = row.get("label", "?")
        run.emit(
            f"{label:>12s}  accepted={row.get('accepted', 0):>6d}  "
            f"done={row.get('completed', 0):>6d}  failed={row.get('failed', 0):>4d}  "
            f"stranded={row.get('stranded', 0):>3d}  "
            f"avail={row.get('availability', float('nan')):7.2%}  "
            f"injected={row.get('injected', 0):>4d}  "
            f"crashes={row.get('worker_crashes', 0)}  "
            f"quarantined={row.get('quarantined', 0)}"
        )
        if row.get("accepted", 0) <= 0:
            run.fail(f"{label}: no queries accepted")
            continue
        if row.get("stranded", 0) != 0:
            run.fail(
                f"{label}: {row.get('stranded')} accepted queries stranded "
                "without an outcome — the ownership ledger leaked"
            )
        resolved = (
            row.get("completed", 0) + row.get("failed", 0) + row.get("cancelled", 0)
        )
        if resolved != row.get("accepted", 0):
            run.fail(
                f"{label}: completed+failed+cancelled {resolved} != accepted "
                f"{row.get('accepted')}"
            )
        availability = row.get("availability")
        if availability is None or not math.isfinite(availability):
            run.fail(f"{label}: availability {availability!r} is not finite")
        elif availability < floor:
            run.fail(
                f"{label}: availability {availability:.2%} below the "
                f"{floor:.0%} floor"
            )
        if row.get("faulted", False):
            if row.get("injected", 0) <= 0:
                run.fail(f"{label}: faulted scenario recorded zero injected faults")
        else:
            if row.get("failed", 0) or row.get("cancelled", 0):
                run.fail(
                    f"{label}: fault-free scenario failed {row.get('failed')} / "
                    f"cancelled {row.get('cancelled')} queries"
                )
            if availability is not None and availability != 1.0:
                run.fail(
                    f"{label}: fault-free availability {availability!r} != 1.0"
                )
            if row.get("injected", 0) != 0:
                run.fail(
                    f"{label}: fault-free scenario recorded "
                    f"{row.get('injected')} injected faults"
                )

    if not (record.get("fault_free") or {}).get("identical", False):
        run.fail("fault-free serving run diverged from the clean (no-injector) run")
    run.ok(
        f"no stranded tickets, every scenario above {floor:.0%} availability, "
        "and the fault-free path is bit-identical to the clean run"
    )


# --------------------------------------------------------------------- #
# bench-diff: committed records vs a base git ref
# --------------------------------------------------------------------- #


def _diff_metrics(record: dict) -> "list[tuple[str, object, str]]":
    """Headline metrics of one record as (name, value, kind) triples.

    Kinds: ``bool`` must never flip true -> false, ``higher`` regresses
    downward, ``lower`` regresses upward.  Only invariants and headline
    numbers are diffed — raw timings and host-shape fields move freely.
    """
    kind = record.get("benchmark")
    metrics: list = []
    if kind == "accel_replay":
        for row in record.get("rows", []):
            label = row.get("label", "?")
            metrics.append((f"{label}.results_equal", row.get("results_equal"), "bool"))
            metrics.append((f"{label}.speedup", row.get("speedup"), "higher"))
        for row in (record.get("replay_scaling") or {}).get("rows", []):
            name = f"scaling.{row.get('label', '?')}@w{row.get('replay_workers')}"
            metrics.append((f"{name}.results_equal", row.get("results_equal"), "bool"))
    elif kind == "shard_scaling":
        for row in record.get("rows", []):
            if not row.get("forced") or row.get("executor") != "thread":
                continue
            metrics.append(
                (f"forced-thread-{row.get('shards')}.speedup", row.get("speedup"), "higher")
            )
    elif kind == "window_capacity":
        metrics.append(
            ("w1_matches_unwindowed", record.get("w1_matches_unwindowed"), "bool")
        )
        for row in record.get("rows", []):
            window = row.get("window")
            metrics.append((f"W{window}.mbase_per_second", row.get("mbase_per_second"), "higher"))
            metrics.append((f"W{window}.total_cycles", row.get("total_cycles"), "lower"))
    elif kind == "serving":
        for row in record.get("rows", []):
            name = f"{row.get('arrival')}x{row.get('workers', 1)}"
            metrics.append((f"{name}.mbase_per_second", row.get("mbase_per_second"), "higher"))
            metrics.append(
                (f"{name}.completed_all", row.get("completed") == row.get("accepted"), "bool")
            )
    elif kind == "chaos":
        metrics.append(
            ("fault_free.identical", (record.get("fault_free") or {}).get("identical"), "bool")
        )
        for row in record.get("rows", []):
            label = row.get("label", "?")
            metrics.append((f"{label}.availability", row.get("availability"), "higher"))
            metrics.append((f"{label}.stranded_zero", row.get("stranded") == 0, "bool"))
    elif kind == "dse":
        metrics.append(
            ("baseline.matches_run", (record.get("baseline") or {}).get("matches_run"), "bool")
        )
        metrics.append(("frontier.size", len(record.get("frontier", [])), "higher"))
        for point in record.get("frontier", []):
            label = point.get("label", "?")
            metrics.append((f"{label}.rederived_equal", point.get("rederived_equal"), "bool"))
            metrics.append((f"{label}.mbase_per_second", point.get("mbase_per_second"), "higher"))
            metrics.append((f"{label}.energy_per_base_nj", point.get("energy_per_base_nj"), "lower"))
            metrics.append((f"{label}.area_mm2", point.get("area_mm2"), "lower"))
    return metrics


def _git_show(ref: str, path: str) -> "dict | None":
    """The committed record at ``ref``, or ``None`` when absent there."""
    result = subprocess.run(
        ["git", "show", f"{ref}:{path}"], capture_output=True, text=True
    )
    if result.returncode != 0:
        return None
    try:
        return json.loads(result.stdout)
    except ValueError:
        return None


@register(
    "bench-diff",
    None,
    "committed BENCH_*.json headline numbers vs a base git ref "
    "(options: base=REF, tolerance=0.30)",
)
def gate_bench_diff(run: GateRun) -> None:
    base = run.text("base", "HEAD")
    tolerance = run.number("tolerance", DIFF_TOLERANCE)
    probe = subprocess.run(
        ["git", "rev-parse", "--verify", f"{base}^{{commit}}"],
        capture_output=True,
        text=True,
    )
    if probe.returncode != 0:
        raise GateInputError(f"cannot resolve base ref {base!r}: {probe.stderr.strip()}")
    listing = subprocess.run(
        ["git", "ls-files", "BENCH_*.json"], capture_output=True, text=True
    )
    files = [line for line in listing.stdout.splitlines() if line]
    if not files:
        raise GateInputError("no committed BENCH_*.json records to diff")

    for path in files:
        old = _git_show(base, path)
        if old is None:
            run.emit(f"{path}: new benchmark (absent at {base}) — nothing to diff")
            continue
        new = load_record(path)
        old_metrics = dict((name, (value, kind)) for name, value, kind in _diff_metrics(old))
        changed = []
        for name, value, kind in _diff_metrics(new):
            old_value = old_metrics.get(name, (None, kind))[0]
            if old_value == value:
                continue
            changed.append((name, old_value, value, kind))
        removed = [
            (name, value, None, kind)
            for name, (value, kind) in old_metrics.items()
            if name not in {name for name, _, _ in _diff_metrics(new)}
        ]
        if not changed and not removed:
            run.emit(f"{path}: headline metrics unchanged vs {base}")
            continue
        run.emit(f"{path} vs {base}:")
        run.emit(f"  {'metric':<52s} {'old':>12s} {'new':>12s} {'delta':>8s}")
        for name, old_value, new_value, kind in changed + removed:
            delta = ""
            regressed = False
            if new_value is None:
                delta = "gone"
                regressed = kind == "bool" and bool(old_value)
            elif kind == "bool":
                regressed = bool(old_value) and not bool(new_value)
            elif isinstance(old_value, (int, float)) and isinstance(new_value, (int, float)):
                if old_value:
                    relative = (new_value - old_value) / abs(old_value)
                    delta = f"{relative:+.1%}"
                    if kind == "higher":
                        regressed = relative < -tolerance
                    elif kind == "lower":
                        regressed = relative > tolerance
            run.emit(
                f"  {name:<52s} {str(old_value):>12s} {str(new_value):>12s} {delta:>8s}"
                + ("  <-- REGRESSED" if regressed else "")
            )
            if regressed:
                run.fail(
                    f"{path}: {name} regressed {old_value!r} -> {new_value!r} "
                    f"(kind={kind}, tolerance {tolerance:.0%})"
                )
    run.ok(f"no committed benchmark headline regressed vs {base}")


# --------------------------------------------------------------------- #
# The runner
# --------------------------------------------------------------------- #


def parse_spec(spec: str) -> "list[tuple[str, str | None, dict]]":
    """Expand one ``--gate`` value into (name, record, options) triples.

    A value without ``=`` or ``:`` may be a comma-separated list of bare
    gate names (each using its default record); otherwise it is a single
    ``NAME[=RECORD][:OPT[=VALUE]...]`` spec.
    """
    if "=" not in spec and ":" not in spec:
        names = [part.strip() for part in spec.split(",") if part.strip()]
        if not names:
            raise GateInputError(f"empty gate spec {spec!r}")
        return [(name, None, {}) for name in names]
    head, *option_parts = spec.split(":")
    name, _, record = head.partition("=")
    options: dict = {}
    for part in option_parts:
        key, _, value = part.partition("=")
        if not key:
            raise GateInputError(f"empty option in gate spec {spec!r}")
        options[key.strip()] = value.strip()
    return [(name.strip(), record.strip() or None, options)]


def run_gate(name: str, record: "str | None", options: dict) -> GateRun:
    """Resolve and execute one gate; the returned context holds the verdict."""
    gate = GATES.get(ALIASES.get(name, name))
    if gate is None:
        raise GateInputError(
            f"unknown gate {name!r}; registered: {', '.join(sorted(GATES))}"
        )
    run = GateRun(
        gate=gate.name,
        record_path=record or gate.default_record,
        options=options,
    )
    print(f"=== gate {gate.name} "
          f"({run.record_path or 'no record'}"
          + (f", {', '.join(f'{k}={v}' if v else k for k, v in options.items())}" if options else "")
          + ") ===")
    gate.run(run)
    return run


def main(argv: "list[str]") -> int:
    parser = argparse.ArgumentParser(
        prog="ci_gates.py", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--gate",
        action="append",
        default=[],
        metavar="SPEC",
        help="NAME[=RECORD][:OPT[=VALUE]...], or a comma-separated list of "
        "bare gate names using their committed default records; repeatable",
    )
    parser.add_argument(
        "specs",
        nargs="*",
        metavar="SPEC",
        help="additional gate specs (same grammar as --gate)",
    )
    parser.add_argument(
        "--list", action="store_true", help="print the gate registry and exit"
    )
    args = parser.parse_args(argv[1:])

    if args.list:
        for gate in sorted(GATES.values(), key=lambda gate: gate.name):
            default = gate.default_record or "-"
            print(f"{gate.name:>15s}  {default:<28s} {gate.description}")
        return 0

    try:
        requested = [
            triple
            for spec in [*args.gate, *args.specs]
            for triple in parse_spec(spec)
        ]
    except GateInputError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not requested:
        parser.print_usage(sys.stderr)
        print("error: no gates requested (use --gate or --list)", file=sys.stderr)
        return 2

    failed: list = []
    for name, record, options in requested:
        try:
            outcome = run_gate(name, record, options)
        except GateInputError as error:
            print(f"error [{name}]: {error}", file=sys.stderr)
            return 2
        for failure in outcome.failures:
            print(f"FAIL [{outcome.gate}]: {failure}", file=sys.stderr)
        if outcome.failures:
            failed.append(outcome.gate)
    if failed:
        print(f"gates failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
