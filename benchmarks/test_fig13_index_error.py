"""Benchmark: Fig. 13 — naive learned index vs MTL index prediction error."""

from __future__ import annotations

from repro.testing import run_once
from repro.experiments import format_fig13, run_fig13


def test_fig13_learned_vs_mtl_errors(benchmark, report):
    result = run_once(
        benchmark, run_fig13, genome_length=30_000, k=5, seed=0, mtl_epochs=150, samples_per_kmer=40
    )
    report.append("")
    report.append(format_fig13(result))
    report.append(
        "paper: naive mean errors 917 / 2133 vs MTL 45 / 182 on 64K-256K / >1M k-mers, "
        "with the MTL index using about half the parameters"
    )
    assert result.mtl_parameters < result.naive_parameters
    # At reproduction scale the naive index is not yet in its failure
    # regime, so the claim checked here is "no worse accuracy with fewer
    # parameters" (see EXPERIMENTS.md).
    assert result.heavy.mtl.mean_error <= result.heavy.naive.mean_error * 2.5
