"""Benchmark: Fig. 18 — search throughput of the EXMA variants vs CPU."""

from __future__ import annotations

from conftest import run_once
from repro.experiments import format_fig18, run_fig18


def test_fig18_search_throughput(benchmark, report):
    result = run_once(benchmark, run_fig18, genome_length=30_000, seed=0)
    report.append("")
    report.append(format_fig18(result))
    report.append(
        "paper: EXMA-15 1.8x, EX-acc 7.25x, EX-2stage 15x, EXMA 23.6x over the CPU (gmean)"
    )
    for row in result.rows:
        assert row.exma15_software > 1.0
        assert row.ex_acc > row.exma15_software
        assert row.exma >= row.ex_acc
