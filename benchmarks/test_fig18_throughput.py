"""Benchmark: Fig. 18 — search throughput of the EXMA variants vs CPU."""

from __future__ import annotations

from repro.experiments import (
    format_fig18,
    format_fig18_batching,
    run_fig18,
    run_fig18_batching,
)
from repro.testing import run_once


def test_fig18_search_throughput(benchmark, report):
    result = run_once(benchmark, run_fig18, genome_length=30_000, seed=0)
    report.append("")
    report.append(format_fig18(result))
    report.append(
        "paper: EXMA-15 1.8x, EX-acc 7.25x, EX-2stage 15x, EXMA 23.6x over the CPU (gmean)"
    )
    for row in result.rows:
        assert row.exma15_software > 1.0
        assert row.ex_acc > row.exma15_software
        assert row.exma >= row.ex_acc
        assert row.coalescing_factor >= 1.0


def test_fig18_batched_engine_beats_sequential(report):
    """The lockstep batched path must beat the per-query loop at batch >= 64."""
    # best-of-5 timing damps CI-runner noise; the margin at batch >= 64 is
    # ~2x locally, so > 1.0 keeps headroom without encoding a brittle ratio
    rows = run_fig18_batching(
        genome_length=20_000, seed=0, batch_sizes=(16, 64, 256), repeats=5
    )
    report.append("")
    report.append(format_fig18_batching(rows))
    for row in rows:
        if row.batch_size >= 64:
            assert row.speedup > 1.0, (
                f"batched search slower than sequential at batch {row.batch_size}: "
                f"{row.speedup:.2f}x"
            )
        assert row.coalescing_factor >= 1.0
