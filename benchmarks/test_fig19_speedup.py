"""Benchmark: Fig. 19 — application speedup with EXMA."""

from __future__ import annotations

from repro.testing import run_once
from repro.experiments import format_fig19, run_fig19_20


def test_fig19_application_speedup(benchmark, report):
    result = run_once(
        benchmark,
        run_fig19_20,
        search_speedup=23.6,
        datasets=("human", "picea", "pinus"),
        genome_length=12_000,
        read_count=6,
    )
    report.append("")
    report.append(format_fig19(result))
    report.append("paper: 2.5x-3.2x gmean application speedup across datasets")
    assert result.gmean_speedup() > 1.5
    for dataset in ("human", "picea", "pinus"):
        assert result.gmean_speedup(dataset) > 1.0
