"""Benchmark: Fig. 21 — DRAM bandwidth utilisation across accelerators."""

from __future__ import annotations

from repro.testing import run_once
from repro.experiments import run_fig21


def test_fig21_bandwidth_utilization(benchmark, report):
    utilization = run_once(benchmark, run_fig21)
    report.append("")
    report.append("Fig. 21 - DRAM bandwidth utilisation")
    for name, value in utilization.items():
        report.append(f"  {name:6s} {value * 100:5.1f}%")
    report.append("paper: ASIC 26%, MEDAL 67%, EXMA 91% (GPU in between)")
    assert utilization["ASIC"] < utilization["MEDAL"] < utilization["EXMA"]
    assert utilization["EXMA"] > 0.85
