"""Benchmark: Figs. 11 and 12 — increment distributions and EXMA profile."""

from __future__ import annotations

from repro.testing import run_once
from repro.experiments import run_fig11_12


def test_fig11_12_increment_distributions_and_profile(benchmark, report):
    result = run_once(benchmark, run_fig11_12, genome_length=20_000, k=5, seed=0)

    report.append("")
    report.append("Fig. 11 - similarity of per-k-mer increment distributions")
    report.append(
        f"  top k-mers compared: {result.similarity.kmer_count}, "
        f"mean pairwise KS distance {result.similarity.mean_pairwise_ks_distance:.3f} "
        f"(0 = identical distributions; paper argues they look alike)"
    )
    report.append("Fig. 12 - EXMA profile by increment-count bucket")
    report.append(f"  {'bucket':>16s} {'kmer %':>8s} {'time %':>8s} {'mean err':>9s}")
    for bucket in result.buckets:
        upper = "inf" if bucket.upper is None else str(bucket.upper)
        report.append(
            f"  {bucket.lower:>7d}-{upper:<8s} {bucket.kmer_fraction * 100:7.2f}% "
            f"{bucket.search_time_fraction * 100:7.2f}% {bucket.mean_prediction_error:9.2f}"
        )
    report.append("paper: heavy k-mers are a tiny fraction of k-mers but >50% of search time")

    populated = [b for b in result.buckets if b.kmer_fraction > 0]
    assert populated[-1].search_time_fraction >= populated[-1].kmer_fraction
