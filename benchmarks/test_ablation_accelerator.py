"""Ablation benchmarks for the EXMA design choices DESIGN.md calls out.

Three ablations on one fixed workload:

* scheduling: FR-FCFS vs 2-stage scheduling vs adding the dynamic page
  policy (the EX-acc / EX-2stage / EXMA stack of Fig. 18);
* compression: CHAIN on vs off (DRAM traffic and cycles);
* index: exact Occ ranks vs the naive learned index vs the MTL index
  (increment entries fetched per lookup).
"""

from __future__ import annotations

import pytest

from repro.testing import run_once
from repro.accel import ExmaAccelerator, ex_2stage_config, ex_acc_config, exma_full_config
from repro.exma import ExmaSearch, NaiveLearnedIndex
from repro.experiments import build_workload

SCALED = dict(base_cache_bytes=8 * 1024, index_cache_bytes=1024, cam_entries=128)


@pytest.fixture(scope="module")
def workload():
    return build_workload("human", genome_length=30_000, seed=0)


def test_ablation_scheduling_and_page_policy(benchmark, report, workload):
    def run_all():
        results = {}
        for name, config in (
            ("FR-FCFS + close page", ex_acc_config().with_overrides(**SCALED)),
            ("2-stage + close page", ex_2stage_config().with_overrides(**SCALED)),
            ("2-stage + dynamic page", exma_full_config().with_overrides(**SCALED)),
        ):
            accelerator = ExmaAccelerator(workload.table, workload.mtl_index, config)
            results[name] = accelerator.run(list(workload.requests), name=name)
        return results

    results = run_once(benchmark, run_all)
    report.append("")
    report.append("Ablation - scheduling and page policy (same request stream)")
    for name, result in results.items():
        report.append(
            f"  {name:24s} cycles={result.total_cycles:8d} "
            f"row-hit={result.dram.row_hit_rate * 100:5.1f}% "
            f"base$={result.base_cache.hit_rate * 100:5.1f}% "
            f"idx$={result.index_cache.hit_rate * 100:5.1f}%"
        )
    baseline = results["FR-FCFS + close page"]
    full = results["2-stage + dynamic page"]
    assert full.total_cycles <= baseline.total_cycles
    assert full.dram.row_hit_rate >= baseline.dram.row_hit_rate


def test_ablation_chain_compression(benchmark, report, workload):
    def run_both():
        on = ExmaAccelerator(
            workload.table,
            workload.mtl_index,
            exma_full_config().with_overrides(use_chain_compression=True, **SCALED),
        ).run(list(workload.requests), name="CHAIN on")
        off = ExmaAccelerator(
            workload.table,
            workload.mtl_index,
            exma_full_config().with_overrides(use_chain_compression=False, **SCALED),
        ).run(list(workload.requests), name="CHAIN off")
        return on, off

    on, off = run_once(benchmark, run_both)
    report.append("")
    report.append("Ablation - CHAIN compression")
    for result in (on, off):
        report.append(
            f"  {result.name:10s} DRAM bytes={result.dram.bytes_transferred:8d} "
            f"cycles={result.total_cycles:8d}"
        )
    assert on.dram.bytes_transferred <= off.dram.bytes_transferred


def test_ablation_index_choice(benchmark, report, workload):
    def measure():
        table = workload.table
        queries = list(workload.queries)
        variants = {
            "exact ranks": ExmaSearch(table, index=None),
            "naive learned": ExmaSearch(
                table, index=NaiveLearnedIndex(table, model_threshold=16, increments_per_leaf=256)
            ),
            "MTL index": ExmaSearch(table, index=workload.mtl_index),
        }
        stats = {}
        for name, search in variants.items():
            _, run_stats = search.request_stream(queries)
            stats[name] = run_stats
        return stats

    stats = run_once(benchmark, measure)
    report.append("")
    report.append("Ablation - Occ index choice (entries fetched per lookup)")
    for name, run_stats in stats.items():
        per_lookup = run_stats.increment_entries_read / max(1, run_stats.occ_lookups)
        report.append(
            f"  {name:14s} entries/lookup={per_lookup:6.2f} "
            f"mean prediction error={run_stats.mean_error:6.2f}"
        )
    assert stats["MTL index"].occ_lookups == stats["exact ranks"].occ_lookups
