"""Benchmark: Fig. 23 — CHAIN vs BΔI compression on pinus."""

from __future__ import annotations

from repro.testing import run_once
from repro.experiments import run_fig23


def test_fig23_chain_compression(benchmark, report):
    comparison = run_once(benchmark, run_fig23, dataset="pinus", genome_length=30_000, k=5, seed=0)
    report.append("")
    report.append("Fig. 23 - data-structure sizes on pinus (paper-scale GB)")
    report.append(f"  LISA-21 original : {comparison.lisa_original_gb:7.1f} GB")
    report.append(
        f"  LISA-21 + BdI    : {comparison.lisa_bdi_gb:7.1f} GB "
        f"(measured ratio {comparison.measured_bdi_ratio:.2f})"
    )
    report.append(f"  EXMA-15 original : {comparison.exma_original_gb:7.1f} GB")
    report.append(
        f"  EXMA-15 + CHAIN  : {comparison.exma_chain_gb:7.1f} GB "
        f"(measured ratio {comparison.measured_chain_ratio:.2f})"
    )
    report.append("paper: LISA-21 330->152 GB with BdI; EXMA-15 compressed to 40 GB with CHAIN")
    assert comparison.lisa_original_gb > comparison.exma_original_gb
    assert comparison.exma_chain_gb < comparison.lisa_bdi_gb
