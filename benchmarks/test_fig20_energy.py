"""Benchmark: Fig. 20 — energy reduction with EXMA."""

from __future__ import annotations

from repro.testing import run_once
from repro.experiments import format_fig20, run_fig19_20


def test_fig20_energy_reduction(benchmark, report):
    result = run_once(
        benchmark,
        run_fig19_20,
        search_speedup=23.6,
        datasets=("human", "picea", "pinus"),
        genome_length=12_000,
        read_count=6,
    )
    report.append("")
    report.append(format_fig20(result))
    report.append("paper: 61%-70% total energy reduction; accelerator <3% of system energy")
    assert result.gmean_energy() < 0.7
    for outcome in result.outcomes:
        accel_energy = (
            outcome.exma_energy.accelerator_dynamic_j + outcome.exma_energy.accelerator_leakage_j
        )
        assert accel_energy < 0.1 * outcome.exma_energy.total_j
