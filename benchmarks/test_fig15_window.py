"""Benchmark: Fig. 15 — coalescing-window sweep + shard scaling record."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import (
    format_fig15,
    format_shard_scaling,
    run_fig15_window,
    run_shard_scaling,
    write_shard_scaling_json,
)
from repro.testing import run_once


def test_fig15_window_sweep(benchmark, report):
    result = run_once(
        benchmark,
        run_fig15_window,
        genome_length=20_000,
        seed=0,
        windows=(1, 2, 4, 8),
        batch_count=8,
        batch_size=64,
    )
    report.append("")
    report.append(format_fig15(result))
    report.append("paper: Fig. 15 merge ratio grows with the scheduling window")
    posts = [row.post_merge_requests for row in result.rows]
    # Power-of-two windows align, so every 2W-window is the union of two
    # W-windows: the post-merge count must be monotone non-increasing.
    assert posts == sorted(posts, reverse=True)
    for row in result.rows:
        assert row.post_merge_requests <= row.pre_merge_requests
        assert row.merge_ratio >= 1.0
    # A wider window can only help: the widest sweep point must strictly
    # merge something on this workload (consecutive read batches share
    # k-mer working sets).
    assert posts[-1] < result.rows[0].pre_merge_requests


def test_fig15_sweep_identical_under_sharded_engine(report, monkeypatch):
    """Strong-scaling check: the sharded engine feeds the window stage the
    exact same per-batch streams, so every sweep row matches serial."""
    # Keep the adaptive clamp from silently serialising the sharded run on
    # a small CI host — this test exists to drive the parallel path.
    monkeypatch.setenv("REPRO_SHARD_OVERSUBSCRIBE", "1")
    serial = run_fig15_window(genome_length=12_000, seed=0, batch_count=4, batch_size=32)
    sharded = run_fig15_window(
        genome_length=12_000, seed=0, batch_count=4, batch_size=32, shards=4
    )
    assert [
        (r.window, r.pre_merge_requests, r.post_merge_requests, r.scheduled_batches)
        for r in serial.rows
    ] == [
        (r.window, r.pre_merge_requests, r.post_merge_requests, r.scheduled_batches)
        for r in sharded.rows
    ]


def test_shard_scaling_recorded(report):
    """Record sharded-vs-serial wall clock (no speedup assertion for the
    forced rows: wall-clock wins additionally need hardware parallelism,
    which CI containers may not have; equivalence is asserted elsewhere)."""
    rows = run_shard_scaling(
        genome_length=20_000,
        seed=0,
        shard_counts=(1, 2, 4),
        batch_size=256,
        repeats=3,
        include_forced=True,
    )
    report.append("")
    report.append(format_shard_scaling(rows))
    assert all(row.seconds > 0 for row in rows)
    assert {row.executor for row in rows} == {"serial", "thread", "process"}
    assert {row.forced for row in rows} == {False, True}
    # The adaptive engine clamps to the hardware (unless the
    # oversubscribe toggle is set, as CI's sharded legs do); the forced
    # rows always run the full requested split.
    from repro.engine.sharded import available_parallelism, oversubscribed

    for row in rows:
        if row.forced:
            assert row.effective_shards == row.shards
        elif row.executor != "serial":
            expected = (
                row.shards
                if oversubscribed()
                else min(row.shards, available_parallelism())
            )
            assert row.effective_shards == expected


def test_shard_scaling_json_record(tmp_path, report):
    """The committed BENCH_shard_scaling.json record round-trips with the
    workload, host CPU count and one entry per row."""
    rows = run_shard_scaling(
        genome_length=12_000, seed=0, shard_counts=(1, 2), batch_size=64, repeats=1
    )
    path = tmp_path / "shard_scaling.json"
    record = write_shard_scaling_json(
        str(path), rows, genome_length=12_000, batch_size=64, query_length=48
    )
    loaded = json.loads(path.read_text())
    assert loaded == record
    assert loaded["benchmark"] == "shard_scaling"
    assert loaded["workload"]["genome_length"] == 12_000
    assert loaded["host_cpus"] == os.cpu_count()
    assert loaded["available_cpus"] >= 1
    assert len(loaded["rows"]) == len(rows)
    for entry, row in zip(loaded["rows"], rows):
        assert entry["shards"] == row.shards
        assert entry["executor"] == row.executor
        assert entry["speedup"] == pytest.approx(row.speedup, abs=5e-3)
