"""Benchmark: Fig. 15 — coalescing-window sweep + shard scaling record."""

from __future__ import annotations

from repro.experiments import (
    format_fig15,
    format_shard_scaling,
    run_fig15_window,
    run_shard_scaling,
)
from repro.testing import run_once


def test_fig15_window_sweep(benchmark, report):
    result = run_once(
        benchmark,
        run_fig15_window,
        genome_length=20_000,
        seed=0,
        windows=(1, 2, 4, 8),
        batch_count=8,
        batch_size=64,
    )
    report.append("")
    report.append(format_fig15(result))
    report.append("paper: Fig. 15 merge ratio grows with the scheduling window")
    posts = [row.post_merge_requests for row in result.rows]
    # Power-of-two windows align, so every 2W-window is the union of two
    # W-windows: the post-merge count must be monotone non-increasing.
    assert posts == sorted(posts, reverse=True)
    for row in result.rows:
        assert row.post_merge_requests <= row.pre_merge_requests
        assert row.merge_ratio >= 1.0
    # A wider window can only help: the widest sweep point must strictly
    # merge something on this workload (consecutive read batches share
    # k-mer working sets).
    assert posts[-1] < result.rows[0].pre_merge_requests


def test_fig15_sweep_identical_under_sharded_engine(report):
    """Strong-scaling check: the sharded engine feeds the window stage the
    exact same per-batch streams, so every sweep row matches serial."""
    serial = run_fig15_window(genome_length=12_000, seed=0, batch_count=4, batch_size=32)
    sharded = run_fig15_window(
        genome_length=12_000, seed=0, batch_count=4, batch_size=32, shards=4
    )
    assert [
        (r.window, r.pre_merge_requests, r.post_merge_requests, r.scheduled_batches)
        for r in serial.rows
    ] == [
        (r.window, r.pre_merge_requests, r.post_merge_requests, r.scheduled_batches)
        for r in sharded.rows
    ]


def test_shard_scaling_recorded(report):
    """Record sharded-vs-serial wall clock (no speedup assertion: at
    reproduction scale the numpy lockstep core is microseconds per shard,
    so the rows track pool overhead; equivalence is asserted elsewhere)."""
    rows = run_shard_scaling(
        genome_length=20_000, seed=0, shard_counts=(1, 2, 4), batch_size=256, repeats=3
    )
    report.append("")
    report.append(format_shard_scaling(rows))
    assert all(row.seconds > 0 for row in rows)
    assert {row.executor for row in rows} == {"serial", "thread", "process"}
