"""Benchmark: Fig. 22 — EXMA design-space exploration."""

from __future__ import annotations

from repro.testing import run_once
from repro.experiments import run_fig22


def test_fig22_design_space_exploration(benchmark, report):
    points = run_once(benchmark, run_fig22, genome_length=30_000, seed=0)
    report.append("")
    report.append("Fig. 22 - design-space exploration (normalised to default EXMA)")
    current_group = None
    for point in points:
        if point.group != current_group:
            report.append(f"  [{point.group}]")
            current_group = point.group
        report.append(f"    {point.label:>6s} {point.normalised_throughput:5.2f}x")
    report.append(
        "paper: 256-entry CAM reaches 77% of 512-entry; 2 PE arrays reach 89% of 4; "
        "throughput saturates at 1 MB base cache and 4 DIMMs"
    )
    groups = {p.group for p in points}
    assert groups == {"DIMMs", "PE arrays", "CAM entries", "base cache"}
    # PE arrays are never the bottleneck for MTL inference.
    pe_points = [p for p in points if p.group == "PE arrays"]
    assert max(p.normalised_throughput for p in pe_points) < 1.2
