"""Shared benchmark plumbing.

Every benchmark regenerates one table or figure of the paper at
reproduction scale, times the underlying kernel with pytest-benchmark, and
prints the paper-style rows/series so the output can be compared against
the published numbers (see EXPERIMENTS.md for the recorded comparison).

Helper functions (``run_once``) live in :mod:`repro.testing` and are
imported explicitly by each benchmark module; this conftest only provides
fixtures and marks everything under ``benchmarks/`` as ``slow`` so a quick
``pytest -m "not slow"`` loop skips the heavy figure regenerations.
"""

from __future__ import annotations

import pathlib

import pytest

_BENCHMARK_DIR = pathlib.Path(__file__).parent.resolve()


def pytest_collection_modifyitems(items):
    """Mark every benchmark test as slow (they regenerate whole figures)."""
    for item in items:
        if _BENCHMARK_DIR in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def report():
    """Collects printable experiment outputs and emits them at the end."""
    lines: list[str] = []
    yield lines
    if lines:
        print("\n" + "\n".join(lines))
