"""Shared benchmark plumbing.

Every benchmark regenerates one table or figure of the paper at
reproduction scale, times the underlying kernel with pytest-benchmark, and
prints the paper-style rows/series so the output can be compared against
the published numbers (see EXPERIMENTS.md for the recorded comparison).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark *function* with a single round (experiments are heavy)."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def report():
    """Collects printable experiment outputs and emits them at the end."""
    lines: list[str] = []
    yield lines
    if lines:
        print("\n" + "\n".join(lines))
