"""Benchmark: Fig. 10 — EXMA table size/throughput trade-off."""

from __future__ import annotations

from repro.testing import run_once
from repro.experiments import run_fig10


def test_fig10_exma_step_tradeoff(benchmark, report):
    result = run_once(benchmark, run_fig10, genome_length=20_000, seed=0)

    report.append("")
    report.append("Fig. 10(a) - EXMA size breakdown vs step number (paper-scale GB)")
    for row in result.sizes:
        report.append(
            f"  k={row.step:2d}  SA={row.suffix_array_gb:5.1f}  index={row.index_gb:4.1f}  "
            f"incr={row.increments_gb:5.1f}  base={row.bases_gb:6.1f}  total={row.total_gb:6.1f}"
        )
    report.append("paper: 15-step = 29.5 GB, 16-step = 41.5 GB")
    report.append("Fig. 10(b) - CPU throughput normalised to LISA-21")
    for name, value in result.throughput_normalised.items():
        error = result.measured_errors.get(name, float("nan"))
        report.append(f"  {name:9s} {value:5.2f}x  (measured index error {error:6.1f})")
    report.append("paper: EXMA-15 0.93x, EXMA-15M 1.75x over LISA-21")

    by_step = {row.step: row for row in result.sizes}
    assert 25 < by_step[15].total_gb < 35
    assert result.throughput_normalised["EXMA-15M"] >= result.throughput_normalised["EXMA-17"]
