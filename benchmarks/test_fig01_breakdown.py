"""Benchmark: Fig. 1 — execution-time breakdown of genome analysis."""

from __future__ import annotations

from repro.testing import run_once
from repro.experiments import format_fig1, run_fig1


def test_fig01_execution_time_breakdown(benchmark, report):
    rows = run_once(benchmark, run_fig1, genome_length=20_000, read_count=8)
    report.append("")
    report.append(format_fig1(rows))
    report.append("paper: FM-Index consumes 31%-81% of execution time across workloads")
    mean_fm = sum(row.fm_index_fraction for row in rows) / len(rows)
    assert 0.3 < mean_fm <= 1.0
