"""Benchmark: Table II — accelerator comparison on the pinus dataset."""

from __future__ import annotations

from repro.testing import run_once
from repro.experiments import build_workload, format_table2, run_table2


def test_table2_accelerator_comparison(benchmark, report):
    # Couple the EXMA row to the *measured* MTL index error of the scaled
    # pinus workload, scaled to the paper's error regime (per EXPERIMENTS.md
    # the paper-scale mean error is ~45-182 entries; the analytic default
    # keeps the paper-scale value when the measured error is tiny).
    workload = build_workload("pinus", genome_length=20_000, seed=0)
    measured_error = max(workload.stats.mean_error, 182.0)
    rows = run_once(benchmark, run_table2, dataset_size_gb=128.0, mean_exma_error=measured_error)

    report.append("")
    report.append(format_table2(rows))
    report.append(
        "paper: GPU 157, FPGA 96, ASIC 34, MEDAL 102, FindeR 93, EXMA 504 Mbase/s; "
        "EXMA 6.9 Mbase/s/W (4.9x MEDAL throughput, 4.8x throughput/W)"
    )

    by_name = {row.name: row for row in rows}
    assert by_name["EXMA"].mbase_per_second > by_name["GPU"].mbase_per_second
    ratio = by_name["EXMA"].mbase_per_second / by_name["MEDAL"].mbase_per_second
    assert 3.0 < ratio < 8.0
    efficiency_ratio = (
        by_name["EXMA"].mbase_per_second_per_watt / by_name["MEDAL"].mbase_per_second_per_watt
    )
    assert 3.0 < efficiency_ratio < 9.0
