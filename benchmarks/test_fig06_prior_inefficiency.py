"""Benchmark: Fig. 6 — inefficiency of prior FM-Index algorithms."""

from __future__ import annotations

from repro.testing import run_once
from repro.experiments import run_fig6


def test_fig06_prior_algorithm_inefficiency(benchmark, report):
    result = run_once(benchmark, run_fig6, genome_length=20_000, seed=0)

    report.append("")
    report.append("Fig. 6(a) - 1-step FM-Index access locality")
    trace = result.row_trace
    report.append(
        f"  accesses={trace.accesses} distinct buckets={trace.distinct_buckets} "
        f"consecutive-same-bucket rate={trace.consecutive_same_bucket_rate:.2f} "
        f"(paper: 197 distinct rows / 200 iterations)"
    )
    report.append("Fig. 6(b) - structure size vs step number (paper-scale GB)")
    for k in (1, 4, 5, 6):
        report.append(f"  FM-{k}: {result.fm_sizes_gb[k]:8.1f} GB")
    for k in (11, 21, 32):
        report.append(f"  LISA-{k}: {result.lisa_sizes_gb[k]:6.1f} GB")
    report.append(
        "Fig. 6(c) - LISA learned-index error: "
        f"mean={result.lisa_error_stats.mean_error:.1f} "
        f"p50={result.lisa_error_stats.percentile_50:.1f} "
        f"max={result.lisa_error_stats.max_error:.0f} (paper mean ~3K at 3 Gbp scale)"
    )
    report.append("Fig. 6(d) - CPU search throughput normalised to FM-1")
    for name, value in result.cpu_throughput_normalised.items():
        report.append(f"  {name:10s} {value:5.2f}x")
    report.append("paper: FM-5 1.21x, LISA-21 2.15x, LISA-21P 5.1x, LISA-21PC 8.53x")

    norm = result.cpu_throughput_normalised
    assert norm["LISA-21PC"] > norm["LISA-21P"] >= norm["LISA-21"] > 1.0
    assert norm["FM-6"] < norm["FM-5"]
