"""Benchmark: Table I — EXMA accelerator hardware configuration."""

from __future__ import annotations

from repro.testing import run_once
from repro.experiments import run_table1


def test_table1_hardware_configuration(benchmark, report):
    table1 = run_once(benchmark, run_table1)
    report.append("")
    report.append("Table I - EXMA accelerator configuration")
    for component in table1.components:
        report.append(
            f"  {component.name:18s} area={component.area_mm2:6.3f} mm^2 "
            f"energy/op={component.energy_per_op_pj:5.2f} pJ"
        )
    report.append(
        f"  total area {table1.total_area_mm2:.2f} mm^2 (paper {table1.reported_area_mm2} mm^2), "
        f"leakage {table1.leakage_w * 1000:.1f} mW"
    )
    report.append(
        f"  CPU {table1.cpu_cores} cores / {table1.cpu_llc_mb} MB LLC; "
        f"DRAM {table1.dram_channels} channels, {table1.dram_capacity_gb} GB, "
        f"tRCD-tCAS-tRP {table1.dram_timings}"
    )
    assert table1.area_matches_reported
    assert table1.dram_timings == (16, 16, 16)
