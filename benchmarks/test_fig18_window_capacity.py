"""Benchmark: Fig. 18 (windowed) — accelerator sweep per window capacity.

Regenerates the recorded ``BENCH_window_capacity.json`` workload: the full
end-to-end windowed pipeline (engine request streams → coalescing window →
``ExmaAccelerator.run_stream``) at W ∈ {1, 2, 4, 8, 16}, and asserts the
invariants the CI bench-smoke job also gates on — the W=1 row is
byte-identical to the unwindowed per-batch path, the replayed stream's
request count is monotone non-increasing in W, and cycles follow the
trend (strictly fewer at W=16, at most 2 % local model noise per step;
on this recorded workload they happen to be strictly monotone too).
"""

from __future__ import annotations

from repro.experiments import format_fig18_window, run_fig18_window
from repro.testing import run_once

#: The recorded BENCH_window_capacity.json workload shape.
WORKLOAD = dict(
    genome_length=60_000,
    seed=0,
    windows=(1, 2, 4, 8, 16),
    batch_count=16,
    batch_size=64,
)


def test_fig18_window_capacity_sweep(benchmark, report):
    result = run_once(benchmark, run_fig18_window, **WORKLOAD)
    report.append("")
    report.append(format_fig18_window(result))
    report.append(
        "paper: Fig. 15/18 — the scheduling window shortens the replayed "
        "stream, so accelerator cycles fall monotonically with W"
    )

    # W=1 must reproduce the unwindowed per-batch path byte-for-byte.
    assert result.w1_matches_unwindowed
    w1 = result.rows[0]
    assert w1.window == 1
    assert w1.total_cycles == result.unwindowed.total_cycles
    assert w1.dram_requests == result.unwindowed.dram_requests

    posts = [row.post_merge_requests for row in result.rows]
    cycles = [row.total_cycles for row in result.rows]
    assert posts == sorted(posts, reverse=True)
    for previous, current in zip(cycles, cycles[1:]):
        assert current <= previous * 1.02
    # Bases accounted are capacity-invariant, so the widest window's
    # strictly shorter replay is strictly higher throughput.
    assert cycles[-1] < cycles[0]
    assert result.rows[-1].mbase_per_second > result.rows[0].mbase_per_second
    # The widest window must strictly merge something on this workload.
    assert posts[-1] < result.rows[0].pre_merge_requests
    for row in result.rows:
        assert row.merge_ratio >= 1.0
        assert row.pre_merge_requests == result.rows[0].pre_merge_requests
