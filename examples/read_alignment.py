#!/usr/bin/env python3
"""Short-read alignment: seed-and-extend with FM-Index seeding.

Reproduces the workload that motivates the paper's Fig. 1: simulate Illumina
and PacBio reads against a synthetic reference, align them with the
seed-and-extend aligner, and report mapping accuracy plus the execution-time
breakdown (FM-Index seeding vs Smith-Waterman extension vs other work) under
the CPU cost model — the fraction EXMA accelerates.

Run with:  python examples/read_alignment.py
"""

from __future__ import annotations

from repro.apps import ReadAligner, alignment_accuracy, default_breakdown_model
from repro.apps.pipeline import WorkCounters
from repro.genome import ILLUMINA, PACBIO, ReadSimulator, build_dataset


def align_and_report(reference_sequence: str, profile, read_length: int, count: int) -> None:
    simulator = ReadSimulator(reference_sequence, profile, seed=3)
    reads = simulator.simulate(read_length=read_length, count=count)
    aligner = ReadAligner(
        reference_sequence,
        min_seed_length=12 if profile.total > 0.05 else 15,
        extension_band=24 if profile.total > 0.05 else 16,
    )
    results, counters = aligner.align_batch(reads)
    accuracy = alignment_accuracy(results, reads, tolerance=25)
    mapped = sum(1 for r in results if r.mapped)

    model = default_breakdown_model()
    work = WorkCounters(
        fm_bases_searched=counters.seeding_bases_searched,
        dp_cells=counters.extension_cells,
        other_units=counters.reads * 4 + counters.seeds,
    )
    run = model.breakdown("alignment", "example", work)
    total = run.total_seconds

    print(f"\n-- {profile.name} reads ({read_length} bp x {count}) --")
    print(f"mapped reads        : {mapped}/{len(reads)}")
    print(f"placement accuracy  : {accuracy * 100:.1f}% within 25 bp of the true origin")
    print(f"seeds per read      : {counters.seeds / max(1, counters.reads):.1f}")
    print("modelled CPU time breakdown:")
    print(f"  FM-Index seeding  : {run.fm_index_seconds / total * 100:5.1f}%")
    print(f"  Smith-Waterman    : {run.dynamic_programming_seconds / total * 100:5.1f}%")
    print(f"  other             : {run.other_seconds / total * 100:5.1f}%")
    speedup = run.speedup_with_search_speedup(23.6)
    print(f"EXMA application speedup (Amdahl, 23.6x search speedup): {speedup:.2f}x")


def main() -> None:
    print("== seed-and-extend read alignment ==")
    reference = build_dataset("human", simulated_length=20_000, seed=0)
    print(f"reference: scaled human stand-in, {len(reference):,} bp")

    align_and_report(reference.sequence, ILLUMINA, read_length=101, count=30)
    align_and_report(reference.sequence, PACBIO, read_length=400, count=10)


if __name__ == "__main__":
    main()
