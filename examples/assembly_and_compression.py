#!/usr/bin/env python3
"""Assembly, annotation and reference-based compression on one reference.

The paper's point is that exact-match operations dominate far more than
just read alignment; this example runs the three other FM-Index-driven
applications the evaluation uses — SGA-style overlap assembly,
ExactWordMatch annotation, and reference-based compression — on a scaled
synthetic genome and reports their quality metrics and FM-Index work.

Run with:  python examples/assembly_and_compression.py
"""

from __future__ import annotations

from repro.apps import (
    AnnotationCounters,
    AssemblyCounters,
    CompressionCounters,
    ExactWordAnnotator,
    OverlapAssembler,
    ReferenceCompressor,
    n50,
    words_from_reference,
)
from repro.genome import ILLUMINA, ReadSimulator, VariantModel, build_dataset
from repro.index import FMIndex


def run_assembly(reference: str) -> None:
    print("\n-- overlap assembly (SGA-style) --")
    reads = [reference[i : i + 150] for i in range(0, len(reference) - 150, 60)]
    assembler = OverlapAssembler(min_overlap=40)
    counters = AssemblyCounters()
    contigs = assembler.assemble(reads, counters)
    print(f"reads               : {len(reads)} x 150 bp (tiled, 90 bp overlap)")
    print(f"contigs             : {len(contigs)}, N50 = {n50(contigs):,} bp")
    print(f"overlap queries     : {counters.overlap_queries} "
          f"({counters.bases_searched:,} bases pushed through exact-match search)")
    longest = max(contigs, key=len)
    print(f"longest contig      : {len(longest):,} bp "
          f"({'matches reference' if longest.sequence in reference else 'mismatch!'})")


def run_annotation(reference: str, fm: FMIndex) -> None:
    print("\n-- exact word-match annotation --")
    words = words_from_reference(reference, word_length=24, stride=200)
    counters = AnnotationCounters()
    annotations = ExactWordAnnotator(fm).annotate(words, counters)
    multi = sum(1 for a in annotations if a.count > 1)
    print(f"words annotated     : {counters.words} (24 bp each)")
    print(f"total occurrences   : {counters.occurrences}")
    print(f"repeated words      : {multi} occur more than once (repeat content)")


def run_compression(reference: str, fm: FMIndex) -> None:
    print("\n-- reference-based compression --")
    donor = VariantModel(substitution_rate=0.002, seed=5).apply(reference[: len(reference) // 2])
    compressor = ReferenceCompressor(fm, reference)
    counters = CompressionCounters()
    tokens = compressor.compress(donor, counters)
    restored = compressor.decompress(tokens)
    print(f"donor sequence      : {len(donor):,} bp derived with ~0.2% variation")
    print(f"tokens              : {counters.match_tokens} matches + {counters.literal_tokens} literals")
    print(f"compression ratio   : {counters.compression_ratio * 100:.1f}% of original size")
    print(f"lossless            : {restored == donor}")


def main() -> None:
    print("== assembly, annotation and compression ==")
    reference = build_dataset("human", simulated_length=15_000, seed=4).sequence
    fm = FMIndex(reference)
    print(f"reference: {len(reference):,} bp scaled human stand-in")

    run_assembly(reference)
    run_annotation(reference, fm)
    run_compression(reference, fm)


if __name__ == "__main__":
    main()
