#!/usr/bin/env python3
"""Accelerator comparison: reproduce the shape of Table II and Fig. 21.

Builds the pinus-profile workload, measures the MTL index error on it, and
feeds that measurement into the analytic accelerator models (GPU, FPGA,
ASIC, MEDAL, FindeR, EXMA) sharing the same DDR4-2400 main memory — the
comparison behind the paper's headline 4.9x-over-MEDAL claim.

Run with:  python examples/accelerator_comparison.py
"""

from __future__ import annotations

from repro.accel import standard_accelerator_suite
from repro.experiments import build_workload, run_fig21


def main() -> None:
    print("== accelerator comparison (Table II / Fig. 21 shape) ==")
    workload = build_workload("pinus", genome_length=20_000, seed=0)
    measured_error = max(workload.stats.mean_error, 182.0)
    print(
        f"scaled pinus workload: {len(workload.requests)} Occ requests, "
        f"measured MTL error {workload.stats.mean_error:.2f} "
        f"(paper-scale error regime used for the table: {measured_error:.0f})"
    )

    print(f"\n{'device':8s} {'algorithm':10s} {'Mbase/s':>9s} {'Mb/s/W':>8s} {'vs MEDAL':>9s}")
    results = {
        model.name: model.throughput(dataset_size_gb=128.0)
        for model in standard_accelerator_suite(mean_exma_error=measured_error)
    }
    medal = results["MEDAL"].mbase_per_second
    for model in standard_accelerator_suite(mean_exma_error=measured_error):
        result = results[model.name]
        print(
            f"{model.name:8s} {model.algorithm:10s} {result.mbase_per_second:9.1f} "
            f"{result.mbase_per_second_per_watt:8.2f} {result.mbase_per_second / medal:8.2f}x"
        )
    print("paper:   EXMA is 4.9x MEDAL's throughput and 4.8x its throughput/Watt")

    print("\nDRAM bandwidth utilisation (Fig. 21):")
    for name, value in run_fig21(mean_exma_error=measured_error).items():
        print(f"  {name:6s} {value * 100:5.1f}%")
    print("paper:   ASIC 26%, MEDAL 67%, EXMA 91%")


if __name__ == "__main__":
    main()
