#!/usr/bin/env python3
"""Quickstart: build an EXMA table, train the MTL index, search queries.

This walks the core public API end to end on a small synthetic genome:

1. synthesise a reference with a human-like repeat profile;
2. build the conventional FM-Index and the EXMA table + MTL index;
3. run the same exact-match queries through both and check they agree;
4. replay the EXMA request stream on the accelerator model and print the
   measured throughput, cache hit rates and DRAM row-buffer behaviour.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.accel import ExmaAccelerator, exma_full_config
from repro.exma import ExmaSearch, ExmaTable, MTLIndex
from repro.genome import random_genome, simulate_short_reads
from repro.index import FMIndex


def main() -> None:
    print("== EXMA quickstart ==")
    reference = random_genome(40_000, seed=7)
    print(f"reference: {len(reference):,} bp synthetic genome")

    # Conventional 1-step FM-Index (the baseline algorithm).
    fm = FMIndex(reference)

    # The EXMA table processes k symbols per iteration; the MTL index
    # predicts positions inside each k-mer's increment list.
    table = ExmaTable(reference, k=6)
    mtl = MTLIndex(table, model_threshold=32, samples_per_kmer=64, epochs=150, seed=0)
    search = ExmaSearch(table, index=mtl)
    print(
        f"EXMA table: k={table.k}, {table.increments.size:,} increments, "
        f"{len(mtl.modelled_kmers)} k-mers covered by the MTL index "
        f"({mtl.parameter_count} parameters)"
    )

    # Seeding queries from simulated Illumina reads.
    reads = simulate_short_reads(reference, coverage=0.15, seed=1)
    queries = [read.sequence[:48] for read in reads[:50]]
    print(f"queries: {len(queries)} x {len(queries[0])} bp read prefixes")

    matched = 0
    for query in queries:
        exma_interval = search.backward_search(query)
        fm_interval = fm.backward_search(query)
        assert exma_interval.count == fm_interval.count
        if not fm_interval.empty:
            # Non-empty results must agree exactly; empty intervals only
            # agree on being empty (their numeric bounds are incidental).
            assert (exma_interval.low, exma_interval.high) == (fm_interval.low, fm_interval.high)
            matched += 1
    print(f"EXMA and FM-Index agree on all queries; {matched}/{len(queries)} have exact matches")

    # Replay the request stream on the accelerator model.
    requests, stats = search.request_stream(queries)
    config = exma_full_config().with_overrides(
        base_cache_bytes=8 * 1024, index_cache_bytes=1024, cam_entries=128
    )
    accelerator = ExmaAccelerator(table, mtl, config)
    result = accelerator.run(requests, name="EXMA")

    print("\n== accelerator model ==")
    print(f"Occ requests          : {result.requests}")
    print(f"mean MTL index error  : {stats.mean_error:.2f} increments")
    print(f"search throughput     : {result.throughput.mbase_per_second:.1f} Mbase/s")
    print(f"DRAM row-buffer hits  : {result.dram.row_hit_rate * 100:.1f}%")
    print(f"base cache hit rate   : {result.base_cache.hit_rate * 100:.1f}%")
    print(f"index cache hit rate  : {result.index_cache.hit_rate * 100:.1f}%")
    print(f"bandwidth utilisation : {result.dram.bandwidth_utilization * 100:.1f}%")


if __name__ == "__main__":
    main()
